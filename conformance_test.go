package rcpn

// Cross-engine conformance matrix — the differential validation the paper
// performs informally ("the functional correctness of the generated
// simulators was validated against the ISS"), done exhaustively as one
// kernel × engine table: every workload kernel runs to completion on every
// engine — the ISS golden model, the functional RCPN machine, the three
// generated cycle-accurate machines, the hand-written five-stage pipeline
// and the SimpleScalar-like baseline, each additionally in a checkpointed
// variant that snapshots at a drained boundary and finishes in a fresh
// instance — and the complete architectural state at exit must match the
// ISS bit-for-bit: registers r0..r14, the NZCV flags, a digest of the
// entire data memory, the retired-instruction count, and both emitted
// output streams.
//
// The engine registry, the state comparator and the two run variants live
// in internal/diffrun and are shared with the generative fuzzer
// (cmd/rcpnfuzz): a divergence the fuzzer minimizes into
// testdata/regressions/ is auto-discovered here and replayed as a matrix
// cell forever after.

import (
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/diffrun"
	"rcpn/internal/iss"
	"rcpn/internal/workload"
)

// noLimit is a position limit no kernel reaches.
const noLimit = int64(1) << 60

// ckptBoundary is where the checkpointed variants snapshot: past warmup,
// well before any kernel finishes.
const ckptBoundary = 5000

// diffState reports every field where got differs from the golden state as
// a named test error.
func diffState(t *testing.T, name string, got, golden diffrun.State) {
	t.Helper()
	for _, line := range got.Diff(golden) {
		t.Errorf("%s: %s", name, line)
	}
}

// goldenState runs the ISS to completion and captures the reference state.
func goldenState(t *testing.T, p *arm.Program) diffrun.State {
	t.Helper()
	golden := iss.New(p, 0)
	golden.MaxInstrs = 200_000_000
	if err := golden.Run(); err != nil {
		t.Fatalf("iss: %v", err)
	}
	return diffrun.StateOf(func(r arm.Reg) uint32 { return golden.R[r] },
		golden.F, golden.Mem, golden.Instret, golden.Exit, golden.Output, golden.Text)
}

// matrixRun runs every engine — plain and checkpointed — against the golden
// state for one program.
func matrixRun(t *testing.T, p *arm.Program) {
	ref := goldenState(t, p)
	for _, e := range diffrun.Engines() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			got, err := diffrun.RunPlain(e, p, noLimit)
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			diffState(t, e.Name, got, ref)
		})
		t.Run(e.Name+"+ckpt", func(t *testing.T) {
			got, err := diffrun.RunCheckpointed(e, p, ckptBoundary, noLimit)
			if err != nil {
				t.Fatalf("%s+ckpt: %v", e.Name, err)
			}
			diffState(t, e.Name+"+ckpt", got, ref)
		})
	}
}

// TestConformanceMatrix is the kernel × engine matrix: every engine — and
// its checkpointed variant — must end every kernel in the ISS-golden
// architectural state.
func TestConformanceMatrix(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			matrixRun(t, p)
		})
	}
}

// TestRegressionKernels replays every minimized repro committed under
// testdata/regressions/ through the full matrix. Each file is a program the
// fuzzer once caught an engine diverging on; the matrix keeps them honest
// forever after. An empty (or missing) directory passes vacuously.
func TestRegressionKernels(t *testing.T) {
	ws, err := workload.LoadRegressions("testdata/regressions")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			matrixRun(t, p)
		})
	}
}
