package simrun

import (
	"context"
	"errors"
	"testing"

	"rcpn/internal/batch"
	"rcpn/internal/iss"
	"rcpn/internal/machine"
	"rcpn/internal/pipe5"
	"rcpn/internal/ssim"
	"rcpn/internal/workload"
)

// TestChunkedEqualsOneShot: driving each simulator in small chunks yields
// exactly the cycle and instruction counts of a single uninterrupted run —
// the bit-exactness Drive promises, and the property the service's result
// cache depends on.
func TestChunkedEqualsOneShot(t *testing.T) {
	w := workload.ByName("crc")
	if w == nil {
		t.Fatal("crc workload missing")
	}
	p1, err := w.Program(1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := w.Program(1)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		oneShot func() (int64, uint64, error)
		stepper func() batch.Stepper
	}{
		{
			name: "strongarm",
			oneShot: func() (int64, uint64, error) {
				m := machine.NewStrongARM(p1, machine.Config{})
				err := m.Run(0)
				return m.Net.CycleCount(), m.Instret, err
			},
			stepper: func() batch.Stepper {
				return Machine(machine.NewStrongARM(p2, machine.Config{}))
			},
		},
		{
			name: "ssim",
			oneShot: func() (int64, uint64, error) {
				s := ssim.New(p1, ssim.Config{})
				err := s.Run(0)
				return s.Cycles, s.Instret, err
			},
			stepper: func() batch.Stepper {
				return SSim(ssim.New(p2, ssim.Config{}))
			},
		},
		{
			name: "pipe5",
			oneShot: func() (int64, uint64, error) {
				s := pipe5.New(p1, pipe5.Config{})
				err := s.Run(0)
				return s.Cycles, s.Instret, err
			},
			stepper: func() batch.Stepper {
				return Pipe5(pipe5.New(p2, pipe5.Config{}))
			},
		},
		{
			name: "functional",
			oneShot: func() (int64, uint64, error) {
				m := machine.NewFunctional(p1, machine.Config{})
				err := m.RunFunctional(0)
				return 0, m.Instret, err
			},
			stepper: func() batch.Stepper {
				return Functional(machine.NewFunctional(p2, machine.Config{}))
			},
		},
		{
			name: "iss",
			oneShot: func() (int64, uint64, error) {
				c := iss.New(p1, 0)
				err := c.Run()
				return 0, c.Instret, err
			},
			stepper: func() batch.Stepper {
				return ISS(iss.New(p2, 0))
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantC, wantI, err := tc.oneShot()
			if err != nil {
				t.Fatal(err)
			}
			st := tc.stepper()
			if err := batch.Drive(context.Background(), st, 0, 4096, nil); err != nil {
				t.Fatal(err)
			}
			gotC, gotI := st.Progress()
			if gotC != wantC || gotI != wantI {
				t.Fatalf("chunked (%d cycles, %d instr) != one-shot (%d, %d)",
					gotC, gotI, wantC, wantI)
			}
		})
	}
}

// TestDriveCancelStopsSimulator: cancellation lands at a chunk boundary
// and the simulator halts mid-program with its partial counters intact.
func TestDriveCancelStopsSimulator(t *testing.T) {
	w := workload.ByName("crc")
	p, err := w.Program(1)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.NewStrongARM(p, machine.Config{})
	st := Machine(m)
	ctx, cancel := context.WithCancel(context.Background())
	chunks := 0
	err = batch.Drive(ctx, st, 0, 1024, func(int64, uint64) {
		chunks++
		if chunks == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if chunks != 3 {
		t.Fatalf("ran %d chunks after cancel, want exactly 3", chunks)
	}
	c, _ := st.Progress()
	if c < 1024*2 || c >= 130691 {
		t.Fatalf("stopped at %d cycles; expected mid-program after ~3 chunks", c)
	}
}

// TestDriveCapStopsSimulator: the cumulative cap surfaces as an error at
// the cap, matching the simulators' own maxCycles semantics.
func TestDriveCapStopsSimulator(t *testing.T) {
	w := workload.ByName("crc")
	p, err := w.Program(1)
	if err != nil {
		t.Fatal(err)
	}
	s := pipe5.New(p, pipe5.Config{})
	err = batch.Drive(context.Background(), Pipe5(s), 5000, 1024, nil)
	if err == nil {
		t.Fatal("cap 5000 did not stop a ~150k-cycle program")
	}
	if s.Cycles != 5000 {
		t.Fatalf("stopped at %d cycles, want exactly the 5000 cap", s.Cycles)
	}
}
