package ssim

import (
	"rcpn/internal/arm"
	"rcpn/internal/obsv"
)

// ---- dispatch ------------------------------------------------------------

// dispatch pops fetch-queue slots, squashes wrong-path slots, executes the
// instruction on the functional oracle (SimpleScalar executes functionally
// at dispatch), allocates the RUU record and links its dependences through
// the create vector.
func (s *Sim) dispatch() {
	dispatched := 0
	for n := 0; n < s.cfg.Width; n++ {
		if s.spec.active {
			// Down the wrong path: execute speculatively against the
			// checkpointed state until the mispredicted branch resolves.
			// Wrong-path work is not forward progress: the cycle is lost to
			// the unresolved branch's guard.
			s.dispatchSpec()
			continue
		}
		if s.oracle.Exited || len(s.ifq) == 0 {
			s.profSlot(stDispatch, dispatched, obsv.StallEmpty)
			return
		}
		if len(s.ruu) >= s.cfg.RUUSize {
			s.profSlot(stDispatch, dispatched, obsv.StallCapacity)
			return
		}
		slot := s.ifq[0]
		if slot.readyAt > s.Cycles {
			s.profSlot(stDispatch, dispatched, obsv.StallDelay)
			return
		}
		pc := s.oracle.R[arm.PC]
		if slot.addr != pc {
			// Wrong-path slot (fetched down a mispredicted path): squash.
			// It consumed fetch bandwidth and a queue entry; nothing more.
			s.popIFQ()
			continue
		}
		s.popIFQ()

		raw := s.oracle.Mem.Read32(pc)
		ins := arm.Decode(raw, pc) // re-derive fields at dispatch

		s.seq++
		e := s.newEntry()
		e.seq, e.raw, e.addr = s.seq, raw, pc

		// Memory operation classification and effective address, computed
		// from the pre-execution register state.
		regVal := func(r arm.Reg) uint32 {
			if r == arm.PC {
				return pc + 8
			}
			return s.oracle.R[r]
		}
		memOps := 0
		switch ins.Class {
		case arm.ClassLoadStore:
			ea, _, _ := ins.LSAddress(regVal(ins.Rn), regVal(ins.Rm))
			e.ea = ea
			e.isLoad = ins.Load
			e.isStore = !ins.Load
			memOps = 1
		case arm.ClassLoadStoreM:
			addrs, _ := ins.LSMAddressesInto(regVal(ins.Rn), s.lsmScratch)
			s.lsmScratch = addrs
			if len(addrs) > 0 {
				e.ea = addrs[0]
			}
			e.isLoad = ins.Load
			e.isStore = !ins.Load
			memOps = len(addrs)
		case arm.ClassMult:
			e.mulRs = regVal(ins.Rs)
		}
		e.memExtra = int64(memOps - 1)
		if e.memExtra < 0 {
			e.memExtra = 0
		}

		// Input dependences through the create vector.
		s.inScratch = inputRegs(&ins, s.inScratch)
		for _, r := range s.inScratch {
			p := s.createVec[r]
			if p != nil && !p.completed {
				p.consumers = append(p.consumers, e)
				e.idepsLeft++
			}
		}

		// Execute functionally (the oracle core).
		if err := s.oracle.Step(); err != nil {
			s.Err = err
			s.profSlot(stDispatch, dispatched, obsv.StallGuard)
			return
		}
		e.actualNext = s.oracle.R[arm.PC]
		if s.oracle.Exited {
			s.Exited = true
		}

		// Control-flow resolution against the fetch-time prediction.
		if ins.Class == arm.ClassBranch {
			taken := e.actualNext != pc+4
			s.Pred.Update(pc, taken, ins.Target())
			e.isBranch = true
		}
		if e.actualNext != slot.predNext {
			// Misprediction: keep fetching and executing down the wrong
			// path (speculatively) until this instruction completes.
			e.mispred = true
			s.recover = e
			s.enterSpec(slot.predNext)
		}

		// Output dependences claim the create vector.
		s.outScratch = outputRegs(&ins, s.outScratch)
		for _, r := range s.outScratch {
			s.createVec[r] = e
		}

		s.ruu = append(s.ruu, e)
		dispatched++
		if s.tr != nil {
			s.tr.Birth(s.Cycles, e.seq, 0)
			s.tr.Fire(s.Cycles, e.seq, 0, opDispatch)
		}
	}
	if s.spec.active {
		s.profSlot(stDispatch, dispatched, obsv.StallGuard)
	} else {
		s.profSlot(stDispatch, dispatched, obsv.StallEmpty)
	}
}

// inputRegs returns the dependence-relevant input registers (r15 is never
// tracked: its read value is static; flags are pseudo-register flagReg),
// appending into buf so the per-dispatch list reuses one scratch buffer.
func inputRegs(ins *arm.Instr, buf []int) []int {
	in := buf[:0]
	add := func(r arm.Reg) {
		if r != arm.PC {
			in = append(in, int(r))
		}
	}
	needFlags := ins.Cond != arm.AL
	switch ins.Class {
	case arm.ClassDataProc:
		if ins.Op.UsesRn() {
			add(ins.Rn)
		}
		if !ins.HasImm {
			add(ins.Rm)
		}
		if ins.ShiftReg {
			add(ins.Rs)
		}
		switch ins.Op {
		case arm.OpADC, arm.OpSBC, arm.OpRSC:
			needFlags = true
		}
		if !ins.HasImm && !ins.ShiftReg && ins.ShiftTyp == arm.ROR && ins.ShiftAmt == 0 {
			needFlags = true // RRX
		}
		if ins.SetFlags {
			needFlags = true // logical ops preserve C/V
		}
	case arm.ClassMult:
		add(ins.Rm)
		add(ins.Rs)
		if ins.Accum {
			add(ins.Rn) // RdLo accumulator for the long forms
			if ins.Long {
				add(ins.Rd) // RdHi accumulator
			}
		}
	case arm.ClassLoadStore:
		add(ins.Rn)
		if !ins.HasImm {
			add(ins.Rm)
		}
		if !ins.Load {
			add(ins.Rd)
		}
	case arm.ClassLoadStoreM:
		add(ins.Rn)
		if !ins.Load {
			for r := arm.Reg(0); r < 15; r++ {
				if ins.RegList&(1<<r) != 0 {
					add(r)
				}
			}
		}
	case arm.ClassSystem:
		add(0)
	}
	if needFlags {
		in = append(in, flagReg)
	}
	return in
}

// outputRegs returns the registers (and flags) the instruction writes,
// appending into buf.
func outputRegs(ins *arm.Instr, buf []int) []int {
	out := buf[:0]
	add := func(r arm.Reg) {
		if r != arm.PC {
			out = append(out, int(r))
		}
	}
	switch ins.Class {
	case arm.ClassDataProc:
		if ins.Op.WritesRd() {
			add(ins.Rd)
		}
		if ins.SetFlags {
			out = append(out, flagReg)
		}
	case arm.ClassMult:
		add(ins.Rd)
		if ins.Long {
			add(ins.Rn) // RdLo
		}
		if ins.SetFlags {
			out = append(out, flagReg)
		}
	case arm.ClassLoadStore:
		if ins.Load {
			add(ins.Rd)
		}
		if !ins.PreIndex || ins.Writeback {
			add(ins.Rn)
		}
	case arm.ClassLoadStoreM:
		if ins.Load {
			for r := arm.Reg(0); r < 15; r++ {
				if ins.RegList&(1<<r) != 0 {
					add(r)
				}
			}
		}
		if ins.Writeback {
			add(ins.Rn)
		}
	case arm.ClassBranch:
		if ins.Link {
			add(arm.LR)
		}
	}
	return out
}

// ---- fetch ---------------------------------------------------------------

// fetch fills the fetch queue along the predicted path, charging the
// instruction cache for every access.
func (s *Sim) fetch() {
	// Fetch keeps running down the predicted path during misspeculation;
	// it only pauses for the one-cycle redirect after recovery.
	if s.oracle.Exited || s.Cycles < s.refetchAt || s.holdFetch {
		if !s.oracle.Exited && s.Cycles < s.refetchAt {
			s.profSlot(stFetch, 0, obsv.StallGuard) // recovery redirect
		} else {
			s.profSlot(stFetch, 0, obsv.StallEmpty)
		}
		return
	}
	fetched := 0
	for n := 0; n < s.cfg.Width && len(s.ifq) < s.cfg.IFQSize; n++ {
		addr := s.fetchPC
		lat := int64(1)
		if s.ITLB != nil {
			lat = int64(s.ITLB.Access(addr))
		}
		if s.ICache != nil {
			lat += int64(s.ICache.Access(addr)) - 1
		}
		raw := s.oracle.Mem.Read32(addr)
		ins := arm.Decode(raw, addr) // predecode for branch prediction

		next := addr + 4
		if ins.Class == arm.ClassBranch {
			if taken, target, known := s.Pred.Predict(addr); taken && known {
				next = target
			}
		}
		s.ifq = append(s.ifq, fetchSlot{addr: addr, predNext: next, readyAt: s.Cycles + lat})
		s.fetchPC = next
		fetched++
	}
	s.profSlot(stFetch, fetched, obsv.StallCapacity) // zero fetches: IFQ full
}
