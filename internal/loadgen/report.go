package loadgen

import (
	"encoding/json"
	"fmt"
)

// Schema identifies the report format.
const Schema = "rcpn-load/v1"

// Quantiles are completion-latency milestones in milliseconds, bucketed at
// the histogram's ~6% resolution.
type Quantiles struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

// Report is the rcpn-load/v1 result of one load run. Counters partition
// the submissions exactly: Accepted + Rejected429 + Rejected503 +
// TransportErrors == Submitted, and Done + Failed + Incomplete == Accepted
// (Incomplete covers jobs still unfinished when the run's wait deadline
// expired). Given the same seed and schedule against the same stub clock,
// the report bytes are identical run to run.
type Report struct {
	Schema  string `json:"schema"`
	Seed    uint64 `json:"seed"`
	Arrival string `json:"arrival"`

	// Offered vs achieved throughput, jobs/sec. Offered is the configured
	// arrival rate; achieved counts jobs that reached a terminal state
	// divided by the wall time of the whole run (submission through last
	// completion).
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`

	Submitted       int64 `json:"submitted"`
	Accepted        int64 `json:"accepted"`
	Cached          int64 `json:"cached"`    // answered from the result cache
	Coalesced       int64 `json:"coalesced"` // joined an in-flight duplicate
	Rejected429     int64 `json:"rejected_429"`
	Rejected503     int64 `json:"rejected_503"`
	TransportErrors int64 `json:"transport_errors"`

	Done       int64 `json:"done"`
	Failed     int64 `json:"failed"`
	Incomplete int64 `json:"incomplete"`

	// Latency is submission-to-terminal-state; SubmitLatency is the POST
	// round trip alone (admission latency, including shed requests).
	Latency       Quantiles `json:"latency"`
	SubmitLatency Quantiles `json:"submit_latency"`

	WallSeconds float64 `json:"wall_seconds"`
	// SimCycles and MCyclesPerSec aggregate the simulated work the server
	// completed for this run's jobs: total cycles across done jobs, and
	// that total divided by wall time — the Mcycles/s-under-load number.
	SimCycles     int64   `json:"sim_cycles"`
	MCyclesPerSec float64 `json:"mcycles_per_sec"`
}

// quantiles renders a histogram of microsecond samples as milliseconds.
func quantiles(h *Histogram) Quantiles {
	ms := func(us int64) float64 { return float64(us) / 1000 }
	return Quantiles{
		P50:  ms(h.Quantile(0.50)),
		P90:  ms(h.Quantile(0.90)),
		P95:  ms(h.Quantile(0.95)),
		P99:  ms(h.Quantile(0.99)),
		Max:  ms(h.Max()),
		Mean: h.Mean() / 1000,
	}
}

// JSON renders the canonical report bytes (indented, fixed field order).
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // plain data; cannot fail
	}
	return append(b, '\n')
}

// ParseReport decodes and validates rcpn-load/v1 bytes.
func ParseReport(b []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("loadgen: bad report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Validate checks the report's internal consistency: the schema tag and
// the counter partition invariants.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("loadgen: schema %q, want %q", r.Schema, Schema)
	}
	if got := r.Accepted + r.Rejected429 + r.Rejected503 + r.TransportErrors; got != r.Submitted {
		return fmt.Errorf("loadgen: accepted %d + rejected %d/%d + errors %d != submitted %d",
			r.Accepted, r.Rejected429, r.Rejected503, r.TransportErrors, r.Submitted)
	}
	if got := r.Done + r.Failed + r.Incomplete; got != r.Accepted {
		return fmt.Errorf("loadgen: done %d + failed %d + incomplete %d != accepted %d",
			r.Done, r.Failed, r.Incomplete, r.Accepted)
	}
	for _, c := range []int64{r.Submitted, r.Rejected429, r.Rejected503, r.TransportErrors, r.Done, r.Failed, r.Incomplete, r.SimCycles} {
		if c < 0 {
			return fmt.Errorf("loadgen: negative counter in report")
		}
	}
	return nil
}
