// Command rcpnserve runs the simulation service: an HTTP API over every
// simulator in this repository, with content-addressed result caching,
// bounded-queue backpressure and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	rcpnserve [-addr :8080] [-workers N] [-queue N] [-cache N]
//	          [-timeout 5m] [-drain 30s] [-maxcycles N]
//
// API (see DESIGN.md §8 and the README quickstart):
//
//	POST /v1/jobs            submit a job spec; 202 + content-addressed id,
//	                         429 + Retry-After when the queue is full
//	GET  /v1/jobs/{id}       job state; rcpn-batch/v1 result when finished
//	GET  /v1/jobs/{id}/events  SSE progress (cycles retired, Mcycles/s)
//	GET  /v1/metrics         queue depth, job states, cache hit/miss, ...
//	GET  /healthz            200 ok, 503 while draining
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rcpn/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth (full queue = HTTP 429)")
	cache := flag.Int("cache", 1024, "result cache entries")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-job deadline")
	drain := flag.Duration("drain", 30*time.Second, "grace period for in-flight jobs on shutdown")
	maxCycles := flag.Int64("maxcycles", 1<<32, "default per-job cycle cap (when the spec sets none)")
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cache,
		JobTimeout:   *timeout,
		MaxCycles:    *maxCycles,
	})
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Fprintf(os.Stderr, "rcpnserve: draining (grace %v)\n", *drain)
		// Stop admitting and let in-flight work finish (or get canceled at
		// the grace deadline) while the listener keeps serving GETs, so
		// clients can still collect results; then close the listener.
		srv.Drain(*drain)
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(sctx) //nolint:errcheck // best-effort close
		fmt.Fprintln(os.Stderr, "rcpnserve: drained")
	}()

	fmt.Fprintf(os.Stderr, "rcpnserve: listening on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "rcpnserve:", err)
		os.Exit(1)
	}
	<-shutdownDone
}
