package tpar

import (
	"rcpn/internal/bpred"
	"rcpn/internal/iss"
	"rcpn/internal/mem"
)

// DefaultWarm returns the leader warm-unit wiring matching the named
// engine's default microarchitecture: the leader's warm caches and
// predictor must share geometry with the segment workers or the restore
// of a donor checkpoint fails. Functional engines (and unknown names)
// get nil — cold checkpoints, always restorable.
//
// Jobs that override the cache hierarchy or predictor (internal/serve
// specs) build their own warm function from the overridden config
// instead of using this table.
func DefaultWarm(engine string) func(c *iss.CPU) {
	switch engine {
	case "strongarm", "arm9", "pipe5", "ssim", "genpipe5":
		return func(c *iss.CPU) {
			h := mem.DefaultStrongARM()
			c.WarmI, c.WarmD, c.WarmPred = h.I, h.D, bpred.NewNotTaken()
		}
	case "xscale":
		return func(c *iss.CPU) {
			h := mem.DefaultXScale()
			c.WarmI, c.WarmD, c.WarmPred = h.I, h.D, bpred.NewBimodal(128)
		}
	}
	return nil
}
