package serve

import "container/list"

// lru is a bounded most-recently-used result cache: content address →
// finished result payload. Determinism is what makes it sound — a cached
// payload is byte-identical to what a fresh run of the same spec would
// produce, so serving from cache is indistinguishable from recomputing.
// Not safe for concurrent use; the Server guards it with its mutex.
type lru struct {
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

func newLRU(max int) *lru {
	if max < 1 {
		max = 1
	}
	return &lru{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *lru) len() int { return c.ll.Len() }

// get returns the payload and refreshes its recency.
func (c *lru) get(key string) ([]byte, bool) {
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry).val, true
}

// add inserts (or refreshes) the payload and returns the keys evicted to
// stay within the bound, so the caller can drop its own per-key state.
func (c *lru) add(key string, val []byte) (evicted []string) {
	if e, ok := c.m[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*lruEntry).val = val
		return nil
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		e := c.ll.Back()
		ent := e.Value.(*lruEntry)
		c.ll.Remove(e)
		delete(c.m, ent.key)
		evicted = append(evicted, ent.key)
	}
	return evicted
}
