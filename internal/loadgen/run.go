package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Clock abstracts time so tests can drive the runner deterministically
// against a stub server; the real clock is the default.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// Config parameterizes one load run.
type Config struct {
	// Target is the server's base URL (e.g. http://127.0.0.1:8080).
	Target string
	// Seed drives the schedule, the corpus and every mix decision.
	Seed uint64
	// Jobs is the number of submissions (default 100).
	Jobs int
	// Rate is the offered arrival rate in jobs/sec (default 50).
	Rate float64
	// Arrival selects the inter-arrival process (default exponential).
	Arrival Arrival
	// Corpus configures the spec corpus; its zero Seed is replaced by Seed.
	Corpus CorpusConfig
	// PollInterval is the terminal-state polling period (default 25ms).
	PollInterval time.Duration
	// WaitTimeout bounds how long the runner waits for accepted jobs to
	// finish after the last submission (default 2m). Jobs still running at
	// the deadline count as Incomplete.
	WaitTimeout time.Duration

	// Clock and Client are injectable for tests; nil selects the real ones.
	Clock  Clock
	Client *http.Client
	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Jobs <= 0 {
		c.Jobs = 100
	}
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Arrival == "" {
		c.Arrival = ArrivalExponential
	}
	if c.Corpus.Seed == 0 {
		c.Corpus.Seed = c.Seed
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 25 * time.Millisecond
	}
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = 2 * time.Minute
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Runner executes one open-loop load run. Build it with New (which
// pre-computes the corpus and schedule) and call Run once.
type Runner struct {
	cfg      Config
	corpus   []Job
	schedule []time.Duration
	picks    []int // submission i sends corpus[picks[i]]

	mu        sync.Mutex
	latency   Histogram // submit → terminal, µs
	submitLat Histogram // POST round trip, µs
	cycles    map[string]int64
	rep       Report
}

// New prepares a run: the corpus, the arrival schedule and the per-arrival
// corpus picks, all deterministic from cfg.Seed.
func New(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	corpus, err := BuildCorpus(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	sched, err := Schedule(cfg.Arrival, cfg.Rate, cfg.Jobs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	r := rng{s: cfg.Seed ^ 0x10ad}
	picks := make([]int, cfg.Jobs)
	for i := range picks {
		picks[i] = r.intn(len(corpus))
	}
	return &Runner{cfg: cfg, corpus: corpus, schedule: sched, picks: picks, cycles: map[string]int64{}}, nil
}

// Schedule exposes the run's arrival offsets (tests).
func (ld *Runner) Schedule() []time.Duration { return ld.schedule }

// Corpus exposes the run's job corpus (tests).
func (ld *Runner) Corpus() []Job { return ld.corpus }

// Run submits the whole schedule open-loop, waits for the accepted jobs to
// reach a terminal state (bounded by WaitTimeout), and returns the
// validated report.
func (ld *Runner) Run(ctx context.Context) (*Report, error) {
	clock := ld.cfg.Clock
	start := clock.Now()
	deadlineOf := func() time.Time { return clock.Now().Add(ld.cfg.WaitTimeout) }

	var wg sync.WaitGroup
	for i, off := range ld.schedule {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if d := start.Add(off).Sub(clock.Now()); d > 0 {
			clock.Sleep(d)
		}
		job := ld.corpus[ld.picks[i]]
		wg.Add(1)
		go func() {
			defer wg.Done()
			ld.submit(ctx, job, deadlineOf())
		}()
	}
	wg.Wait()
	wall := clock.Now().Sub(start).Seconds()

	ld.mu.Lock()
	defer ld.mu.Unlock()
	rep := ld.rep
	rep.Schema = Schema
	rep.Seed = ld.cfg.Seed
	rep.Arrival = string(ld.cfg.Arrival)
	rep.OfferedRate = ld.cfg.Rate
	rep.Submitted = int64(len(ld.schedule))
	rep.WallSeconds = wall
	for _, c := range ld.cycles {
		rep.SimCycles += c
	}
	if wall > 0 {
		rep.AchievedRate = float64(rep.Done+rep.Failed) / wall
		rep.MCyclesPerSec = float64(rep.SimCycles) / 1e6 / wall
	}
	rep.Latency = quantiles(&ld.latency)
	rep.SubmitLatency = quantiles(&ld.submitLat)
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return &rep, nil
}

// submitResponse mirrors the server's POST /v1/jobs body.
type submitResponse struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced"`
}

// jobStatus mirrors GET /v1/jobs/{id}.
type jobStatus struct {
	State  string          `json:"state"`
	Result json.RawMessage `json:"result"`
}

// resultCycles digs the simulated cycle count out of a terminal job's
// one-job rcpn-batch/v1 payload.
type resultCycles struct {
	Jobs []struct {
		Cycles int64 `json:"cycles"`
	} `json:"jobs"`
}

// submit POSTs one job and, when accepted, polls it to a terminal state.
func (ld *Runner) submit(ctx context.Context, job Job, deadline time.Time) {
	clock := ld.cfg.Clock
	t0 := clock.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ld.cfg.Target+"/v1/jobs", bytes.NewReader(job.Body))
	if err != nil {
		ld.count(func(r *Report) { r.TransportErrors++ })
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", job.Tenant)
	if job.Priority != "" {
		req.Header.Set("X-Priority", job.Priority)
	}
	resp, err := ld.cfg.Client.Do(req)
	if err != nil {
		ld.count(func(r *Report) { r.TransportErrors++ })
		return
	}
	var sub submitResponse
	decErr := json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	rt := clock.Now().Sub(t0).Microseconds()
	ld.mu.Lock()
	ld.submitLat.Record(rt)
	ld.mu.Unlock()

	switch resp.StatusCode {
	case http.StatusAccepted:
		if decErr != nil || sub.ID == "" {
			ld.count(func(r *Report) { r.TransportErrors++ })
			return
		}
	case http.StatusTooManyRequests:
		ld.count(func(r *Report) { r.Rejected429++ })
		return
	case http.StatusServiceUnavailable:
		ld.count(func(r *Report) { r.Rejected503++ })
		return
	default:
		ld.count(func(r *Report) { r.TransportErrors++ })
		return
	}

	ld.count(func(r *Report) {
		r.Accepted++
		if sub.Cached {
			r.Cached++
		}
		if sub.Coalesced {
			r.Coalesced++
		}
	})
	ld.await(ctx, sub.ID, t0, deadline)
}

// await polls one accepted job to its terminal state.
func (ld *Runner) await(ctx context.Context, id string, t0 time.Time, deadline time.Time) {
	clock := ld.cfg.Clock
	for {
		st, ok := ld.getJob(ctx, id)
		if ok && (st.State == "done" || st.State == "failed") {
			lat := clock.Now().Sub(t0).Microseconds()
			var rc resultCycles
			_ = json.Unmarshal(st.Result, &rc)
			ld.mu.Lock()
			ld.latency.Record(lat)
			if st.State == "done" {
				ld.rep.Done++
				if len(rc.Jobs) == 1 {
					ld.cycles[id] = rc.Jobs[0].Cycles
				}
			} else {
				ld.rep.Failed++
			}
			ld.mu.Unlock()
			return
		}
		if !clock.Now().Before(deadline) || ctx.Err() != nil {
			ld.count(func(r *Report) { r.Incomplete++ })
			return
		}
		clock.Sleep(ld.cfg.PollInterval)
	}
}

// getJob fetches GET /v1/jobs/{id}; ok is false on any transport or decode
// trouble (the poll loop just tries again until its deadline).
func (ld *Runner) getJob(ctx context.Context, id string) (jobStatus, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%s", ld.cfg.Target, id), nil)
	if err != nil {
		return jobStatus{}, false
	}
	resp, err := ld.cfg.Client.Do(req)
	if err != nil {
		return jobStatus{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobStatus{}, false
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return jobStatus{}, false
	}
	return st, true
}

func (ld *Runner) count(f func(*Report)) {
	ld.mu.Lock()
	f(&ld.rep)
	ld.mu.Unlock()
}
