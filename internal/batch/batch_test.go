package batch

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeJobs builds a matrix of deterministic jobs whose metrics depend only
// on their coordinates, with staggered durations so parallel completion
// order differs from submission order.
func fakeJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Simulator: fmt.Sprintf("sim%d", i%3),
			Workload:  fmt.Sprintf("wl%d", i/3),
			Run: func(ctx context.Context) (Metrics, error) {
				// Reverse-staggered sleeps: late-submitted jobs finish first
				// under parallelism.
				time.Sleep(time.Duration(n-i) * time.Millisecond / 4)
				return Metrics{Cycles: int64(1000 + i), Instret: uint64(100 + i),
					Extra: map[string]float64{"idx": float64(i)}}, nil
			},
		}
	}
	return jobs
}

// TestDeterministicReport: the wall-free JSON report is byte-identical for
// a serial and a heavily parallel run of the same matrix.
func TestDeterministicReport(t *testing.T) {
	serial := Run(fakeJobs(24), Options{Workers: 1})
	parallel := Run(fakeJobs(24), Options{Workers: 8})

	js, err := serial.JSON(false)
	if err != nil {
		t.Fatal(err)
	}
	jp, err := parallel.JSON(false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js, jp) {
		t.Fatalf("serial and parallel reports differ:\n%s\n----\n%s", js, jp)
	}

	// With wall timing embedded the report is host-dependent by design;
	// it must still parse and carry the worker count.
	jw, err := parallel.JSON(true)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(jw, []byte(`"workers": 8`)) {
		t.Fatalf("wall report missing worker count:\n%s", jw)
	}
}

// TestResultsInSubmissionOrder: results land at their job's index no matter
// when they complete.
func TestResultsInSubmissionOrder(t *testing.T) {
	rep := Run(fakeJobs(24), Options{Workers: 8})
	for i, r := range rep.Results {
		if r.Err != "" {
			t.Fatalf("job %d failed: %s", i, r.Err)
		}
		if r.Cycles != int64(1000+i) {
			t.Fatalf("result %d has cycles %d (slot scrambled)", i, r.Cycles)
		}
	}
}

// TestPanicRecovery: a panicking job is recorded as failed without killing
// the pool or the process.
func TestPanicRecovery(t *testing.T) {
	jobs := fakeJobs(6)
	jobs[2].Run = func(ctx context.Context) (Metrics, error) { panic("simulated simulator bug") }
	rep := Run(jobs, Options{Workers: 3})

	r := rep.Results[2]
	if !r.Panicked || r.Err == "" {
		t.Fatalf("panic not recorded: %+v", r)
	}
	if len(rep.Failed()) != 1 {
		t.Fatalf("Failed() = %d results, want 1", len(rep.Failed()))
	}
	for i, r := range rep.Results {
		if i != 2 && r.Err != "" {
			t.Errorf("innocent job %d failed: %s", i, r.Err)
		}
	}
}

// TestTimeout: a wedged job is abandoned and flagged; the rest of the sweep
// completes.
func TestTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	jobs := fakeJobs(4)
	jobs[1].Run = func(ctx context.Context) (Metrics, error) { <-block; return Metrics{}, nil }
	jobs[1].Timeout = 30 * time.Millisecond

	rep := Run(jobs, Options{Workers: 2, Timeout: 10 * time.Second})
	if r := rep.Results[1]; !r.TimedOut || r.Err == "" {
		t.Fatalf("timeout not recorded: %+v", r)
	}
	if n := len(rep.Failed()); n != 1 {
		t.Fatalf("Failed() = %d, want 1", n)
	}
}

// TestProgress: the callback fires once per job with monotonically
// increasing done counts, serialized.
func TestProgress(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	rep := Run(fakeJobs(12), Options{Workers: 4,
		Progress: func(done, total int, r Result) {
			mu.Lock()
			defer mu.Unlock()
			if total != 12 {
				t.Errorf("total = %d", total)
			}
			dones = append(dones, done)
		}})
	if len(rep.Results) != 12 || len(dones) != 12 {
		t.Fatalf("%d results, %d progress calls", len(rep.Results), len(dones))
	}
	seen := map[int]bool{}
	for _, d := range dones {
		if d < 1 || d > 12 || seen[d] {
			t.Fatalf("bad done sequence %v", dones)
		}
		seen[d] = true
	}
}

// TestStatsSet: config and interval labels fold into the simulator column
// and failed jobs are excluded.
func TestStatsSet(t *testing.T) {
	jobs := []Job{
		{Simulator: "s", Workload: "w", Config: "c", Interval: "k0",
			Run: func(ctx context.Context) (Metrics, error) { return Metrics{Cycles: 10, Instret: 5}, nil }},
		{Simulator: "s", Workload: "w2",
			Run: func(ctx context.Context) (Metrics, error) { return Metrics{}, fmt.Errorf("boom") }},
	}
	set := Run(jobs, Options{Workers: 1}).StatsSet()
	if len(set.Runs) != 1 {
		t.Fatalf("%d runs, want 1", len(set.Runs))
	}
	if got := set.Runs[0].Simulator; got != "s/c@k0" {
		t.Fatalf("folded name %q", got)
	}
}

// TestSingleWorkerOrder: with one worker, completion order IS submission
// order — the property the -j 1 compatibility mode relies on.
func TestSingleWorkerOrder(t *testing.T) {
	var mu sync.Mutex
	var order []string
	jobs := []Job{
		{Simulator: "a", Workload: "w", Run: func(ctx context.Context) (Metrics, error) {
			mu.Lock()
			order = append(order, "a")
			mu.Unlock()
			return Metrics{}, nil
		}},
		{Simulator: "b", Workload: "w", Run: func(ctx context.Context) (Metrics, error) {
			mu.Lock()
			order = append(order, "b")
			mu.Unlock()
			return Metrics{}, nil
		}},
		{Simulator: "c", Workload: "w", Run: func(ctx context.Context) (Metrics, error) {
			mu.Lock()
			order = append(order, "c")
			mu.Unlock()
			return Metrics{}, nil
		}},
	}
	Run(jobs, Options{Workers: 1})
	if fmt.Sprint(order) != "[a b c]" {
		t.Fatalf("execution order %v", order)
	}
}

// TestEmptyMatrix: zero jobs is a no-op, not a hang.
func TestEmptyMatrix(t *testing.T) {
	rep := Run(nil, Options{Workers: 4})
	if len(rep.Results) != 0 {
		t.Fatal("results from an empty matrix")
	}
	if _, err := rep.JSON(false); err != nil {
		t.Fatal(err)
	}
}
