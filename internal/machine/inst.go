package machine

import (
	"rcpn/internal/arm"
	"rcpn/internal/core"
	"rcpn/internal/reg"
)

// Inst is the payload of an instruction token: the statically decoded
// instruction plus its operand references. It is the paper's "customized
// version of the corresponding RCPN sub-net ... generated for individual
// instances of instructions": symbols of the operation class are replaced by
// RegRef/Const objects at decode, and the instance is cached per PC and
// recycled (§3, §5).
type Inst struct {
	m   *Machine
	I   arm.Instr
	Tok *core.Token
	Seq uint64

	// Operand references; usage varies by class:
	//   DataProc:   src1=Rn  src2=op2(Rm/imm)  src3=Rs shift amount
	//   Mult:       src1=Rm  src2=Rs           src3=Rn accumulator
	//   LoadStore:  src1=Rn base  src2=offset  src3=Rd store data
	//   System:     src1=r0
	src1, src2, src3 reg.Operand
	dst              *reg.Ref   // Rd write target (nil if none or PC); RdHi for long multiplies
	dst2             *reg.Ref   // RdLo of long multiplies
	lr               *reg.Ref   // link-register write (BL)
	psr              *reg.Ref   // flags read and/or write
	lrefs            []*reg.Ref // LDM/STM per-register refs, list order

	needPSR     bool // reads flags (condition or carry-in)
	writesFlags bool
	writesPC    bool // result redirects control flow (non-Branch classes)

	// Per-dynamic-instance state.
	inUse    bool
	annulled bool
	resolved bool   // control transfer already performed
	predNext uint32 // fetch PC chosen after this instruction was fetched
	ea       uint32 // effective address (LoadStore)
	wbVal    uint32 // base writeback value
	lsmIdx   int    // next register slot during LDM/STM micro-steps
	lsmAddrs []uint32
	lsmBase  *reg.Ref
}

// InState forwards pipeline-state queries to the token, so Refs owned by
// this instruction can answer CanReadIn (bypass) questions.
func (in *Inst) InState(s int) bool { return in.Tok.InState(s) }

// decode returns a ready instruction instance for addr, reusing a pooled one
// when available (the token cache / partial-evaluation optimization).
func (m *Machine) decode(addr uint32) *Inst {
	if in := m.poolGet(addr); in != nil {
		in.resetDynamic()
		return in
	}
	return m.newInst(addr)
}

func (in *Inst) resetDynamic() {
	in.inUse = true
	in.annulled = false
	in.resolved = false
	in.predNext = 0
	in.ea = 0
	in.wbVal = 0
	in.lsmIdx = 0
	in.lsmAddrs = in.lsmAddrs[:0]
	in.Tok.Recycle(core.ClassID(in.I.Class), in)
}

// newInst decodes the word at addr and wires the operation class's symbols
// to RegRef/Const operands.
func (m *Machine) newInst(addr uint32) *Inst {
	raw := m.Mem.Read32(addr)
	in := &Inst{m: m, I: arm.Decode(raw, addr), inUse: true}
	in.Tok = m.tokens.Get(core.ClassID(in.I.Class), in)
	i := &in.I

	// A register operand; reads of r15 are the statically known addr+8.
	rd := func(r arm.Reg) reg.Operand {
		if r == arm.PC {
			return reg.NewConst(addr + 8)
		}
		return reg.NewRef(m.regs[r], in)
	}
	wr := func(r arm.Reg) *reg.Ref { return reg.NewRef(m.regs[r], in) }

	in.needPSR = i.Cond != arm.AL
	switch i.Class {
	case arm.ClassDataProc:
		if i.Op.UsesRn() {
			in.src1 = rd(i.Rn)
		}
		if i.HasImm {
			in.src2 = reg.NewConst(i.Imm)
		} else {
			in.src2 = rd(i.Rm)
		}
		if i.ShiftReg {
			in.src3 = rd(i.Rs)
		}
		switch {
		case !i.Op.WritesRd():
		case i.Rd == arm.PC:
			in.writesPC = true
		default:
			in.dst = wr(i.Rd)
		}
		in.writesFlags = i.SetFlags
		usesCarry := i.Op == arm.OpADC || i.Op == arm.OpSBC || i.Op == arm.OpRSC ||
			(!i.HasImm && !i.ShiftReg && i.ShiftTyp == arm.ROR && i.ShiftAmt == 0) // RRX
		in.needPSR = in.needPSR || usesCarry || i.SetFlags

	case arm.ClassMult:
		in.src1 = rd(i.Rm)
		in.src2 = rd(i.Rs)
		if i.Long {
			in.dst = wr(i.Rd)  // RdHi
			in.dst2 = wr(i.Rn) // RdLo
		} else {
			if i.Accum {
				in.src3 = rd(i.Rn)
			}
			in.dst = wr(i.Rd)
		}
		in.writesFlags = i.SetFlags
		in.needPSR = in.needPSR || i.SetFlags

	case arm.ClassLoadStore:
		in.src1 = rd(i.Rn)
		if i.HasImm {
			in.src2 = reg.NewConst(i.Imm)
		} else {
			in.src2 = rd(i.Rm)
		}
		if i.Load {
			if i.Rd == arm.PC {
				in.writesPC = true
			} else {
				in.dst = wr(i.Rd)
			}
		} else {
			if i.Rd == arm.PC {
				in.src3 = reg.NewConst(addr + 12) // STR pc stores pc+12
			} else {
				in.src3 = rd(i.Rd)
			}
		}

	case arm.ClassLoadStoreM:
		in.src1 = rd(i.Rn)
		if b, ok := in.src1.(*reg.Ref); ok {
			in.lsmBase = b
		}
		for r := arm.Reg(0); r < 16; r++ {
			if i.RegList&(1<<r) == 0 {
				continue
			}
			if r == arm.PC {
				if i.Load {
					in.writesPC = true
					in.lrefs = append(in.lrefs, nil) // slot for PC load
				} else {
					in.lrefs = append(in.lrefs, nil) // STM pc: handled as const
				}
				continue
			}
			in.lrefs = append(in.lrefs, wr(r))
		}

	case arm.ClassBranch:
		if i.Link {
			in.lr = wr(arm.LR)
		}

	case arm.ClassSystem:
		in.src1 = rd(0) // r0 carries the syscall argument
	}

	if in.needPSR || in.writesFlags {
		in.psr = reg.NewRef(m.psrReg, in)
	}
	return in
}

// flags returns the architected NZCV as seen by this instruction's psr ref
// (valid only after psr.Read()).
func (in *Inst) flags() arm.Flags { return unpackFlags(in.psr.Value()) }

// readable reports whether op can be sourced from the register file or any
// of the bypass states.
func readable(op reg.Operand, bypass ...int) bool {
	if op == nil || op.CanRead() {
		return true
	}
	for _, s := range bypass {
		if op.CanReadIn(s) {
			return true
		}
	}
	return false
}

// readFrom is the counting wrapper the issue actions use: it loads the
// operand like the package-level readFrom and attributes the read to the
// register file or the bypass network in the machine's stall profile, so
// hazards *hidden* by forwarding are visible next to the ones that
// stalled ("bypass-served" in the DESIGN.md §10 taxonomy).
func (in *Inst) readFrom(op reg.Operand, bypass ...int) {
	p := in.m.prof
	if p == nil {
		readFrom(op, bypass...)
		return
	}
	if op == nil {
		return
	}
	if op.CanRead() {
		op.Read()
		p.FileReads++
		return
	}
	for _, s := range bypass {
		if op.CanReadIn(s) {
			op.ReadIn(s)
			p.BypassServed++
			return
		}
	}
	op.ReadIn(-1)
}

// readFrom loads op's value from the register file or the first bypass state
// holding it; guards must have established readability.
func readFrom(op reg.Operand, bypass ...int) {
	if op == nil {
		return
	}
	if op.CanRead() {
		op.Read()
		return
	}
	for _, s := range bypass {
		if op.CanReadIn(s) {
			op.ReadIn(s)
			return
		}
	}
	// Guard/action mismatch: surface the model bug like reg.Ref.ReadIn does.
	op.ReadIn(-1)
}

// releaseLocks drops every reservation this (squashed) instance may hold.
func (in *Inst) releaseLocks() {
	if in.dst != nil {
		in.dst.Release()
	}
	if in.dst2 != nil {
		in.dst2.Release()
	}
	if in.lr != nil {
		in.lr.Release()
	}
	if in.psr != nil {
		in.psr.Release()
	}
	for _, r := range in.lrefs {
		if r != nil {
			r.Release()
		}
	}
	if in.lsmBase != nil {
		in.lsmBase.Release()
	}
}

// resolveControl redirects fetch once the architected next PC is known.
// Instructions that serialized the front end (SWI, PC loads) simply release
// it toward the right target; otherwise a wrong predicted path flushes the
// younger in-flight instructions (§3.2's "flushing L1 and L2 latches"
// generalized to the whole pipeline).
func (in *Inst) resolveControl(actualNext uint32) {
	in.resolved = true
	m := in.m
	if m.functional {
		// Functional extraction: no pipeline, just redirect.
		m.pc = actualNext
		return
	}
	if m.fetchHold == in {
		m.fetchHold = nil
		m.pc = actualNext
		return
	}
	if actualNext != in.predNext {
		m.flushAfter(in.Seq, actualNext)
	}
}
