package batch

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPoolPriorityPreference: with one worker held busy, a low-priority
// job enqueued before a high-priority one must run after it — workers
// prefer the high queue whenever it has work ready.
func TestPoolPriorityPreference(t *testing.T) {
	gate := make(chan struct{})
	p := NewPool(8, Options{Workers: 1})
	defer p.Close()

	var mu sync.Mutex
	var order []string
	record := func(name string) func(ctx context.Context) (Metrics, error) {
		return func(ctx context.Context) (Metrics, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return Metrics{}, nil
		}
	}

	// Occupy the worker so later submissions queue up.
	busy := make(chan struct{})
	if err := p.TrySubmit(Job{Simulator: "t", Workload: "busy", Run: func(ctx context.Context) (Metrics, error) {
		close(busy)
		<-gate
		return Metrics{}, nil
	}}, nil); err != nil {
		t.Fatal(err)
	}
	<-busy

	var wg sync.WaitGroup
	wg.Add(4)
	donefn := func(Result) { wg.Done() }
	for i := 0; i < 2; i++ {
		if err := p.TrySubmitPri(Job{Simulator: "t", Workload: "low", Run: record(fmt.Sprintf("low%d", i))}, PriLow, donefn); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := p.TrySubmitPri(Job{Simulator: "t", Workload: "high", Run: record(fmt.Sprintf("high%d", i))}, PriHigh, donefn); err != nil {
			t.Fatal(err)
		}
	}
	if d := p.DepthPri(PriLow); d != 2 {
		t.Fatalf("low depth = %d, want 2", d)
	}
	if d := p.DepthPri(PriHigh); d != 2 {
		t.Fatalf("high depth = %d, want 2", d)
	}
	close(gate)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 4 || order[0] != "high0" || order[1] != "high1" {
		t.Fatalf("execution order = %v, want both high jobs first", order)
	}
}

// TestPoolPriorityLevelsDontShareCapacity: a flood filling the low queue
// must not consume high-queue slots, and vice versa.
func TestPoolPriorityLevelsDontShareCapacity(t *testing.T) {
	p := NewPool(2, Options{Workers: 1})
	defer p.Close()
	// Declared after p so the deferred close runs first, releasing the
	// busy worker before Close drains.
	gate := make(chan struct{})
	defer close(gate)

	busy := make(chan struct{})
	if err := p.TrySubmit(Job{Run: func(ctx context.Context) (Metrics, error) {
		close(busy)
		<-gate
		return Metrics{}, nil
	}}, nil); err != nil {
		t.Fatal(err)
	}
	<-busy

	sleeper := Job{Run: func(ctx context.Context) (Metrics, error) { return Metrics{}, nil }}
	for i := 0; i < 2; i++ {
		if err := p.TrySubmitPri(sleeper, PriLow, nil); err != nil {
			t.Fatalf("low submit %d: %v", i, err)
		}
	}
	if err := p.TrySubmitPri(sleeper, PriLow, nil); err != ErrQueueFull {
		t.Fatalf("low overflow = %v, want ErrQueueFull", err)
	}
	// The full low queue must not have eaten high capacity.
	for i := 0; i < 2; i++ {
		if err := p.TrySubmitPri(sleeper, PriHigh, nil); err != nil {
			t.Fatalf("high submit %d with full low queue: %v", i, err)
		}
	}
	if err := p.TrySubmitPri(sleeper, PriHigh, nil); err != ErrQueueFull {
		t.Fatalf("high overflow = %v, want ErrQueueFull", err)
	}
}

// TestPoolCloseDrainsBothLevels: Close must run every queued job at both
// levels before returning.
func TestPoolCloseDrainsBothLevels(t *testing.T) {
	p := NewPool(8, Options{Workers: 2})
	var ran sync.Map
	for i := 0; i < 4; i++ {
		pri := PriHigh
		if i%2 == 1 {
			pri = PriLow
		}
		key := i
		if err := p.TrySubmitPri(Job{Run: func(ctx context.Context) (Metrics, error) {
			ran.Store(key, true)
			return Metrics{}, nil
		}}, pri, nil); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	for i := 0; i < 4; i++ {
		if _, ok := ran.Load(i); !ok {
			t.Fatalf("queued job %d never ran before Close returned", i)
		}
	}
	if err := p.TrySubmit(Job{}, nil); err != ErrPoolClosed {
		t.Fatalf("submit after close = %v, want ErrPoolClosed", err)
	}
}

// TestTransientResult: a body error wrapping ErrTransient surfaces as
// Result.Transient; a plain error does not.
func TestTransientResult(t *testing.T) {
	rep := Run([]Job{
		{Simulator: "t", Workload: "a", Run: func(ctx context.Context) (Metrics, error) {
			return Metrics{}, fmt.Errorf("worker lost: %w", ErrTransient)
		}},
		{Simulator: "t", Workload: "b", Run: func(ctx context.Context) (Metrics, error) {
			return Metrics{}, fmt.Errorf("bad program")
		}},
	}, Options{Workers: 1, Timeout: 5 * time.Second})
	if !rep.Results[0].Transient {
		t.Errorf("ErrTransient-wrapped failure not marked Transient: %+v", rep.Results[0])
	}
	if rep.Results[1].Transient {
		t.Errorf("plain failure marked Transient: %+v", rep.Results[1])
	}
}
