// Command rcpnsim runs an ARM7 program — a built-in benchmark kernel or an
// assembly file — on one of the simulators in this repository and prints
// the run's statistics.
//
// Usage:
//
//	rcpnsim [-sim strongarm|xscale|arm9|ssim|pipe5|func|iss] [-scale N]
//	        [-profile] [-trace FILE] [-trace-events N] [-pipetrace N]
//	        [-util] [-emit] [-json]
//	        [-parallel N] [-parallel-mode exact|sampled] [-parallel-workers N]
//	        [-parallel-check] (-bench name | file.s)
//
// -parallel N runs the job time-parallel (internal/tpar): an ISS leader
// drops warmed checkpoints at N-1 drained instruction boundaries and the
// segments simulate concurrently on any engine in the diffrun registry
// (so -sim genpipe5 works here too). Exact mode stitches a result
// byte-identical to the serial segmented run; sampled mode trades a
// reported warmup error bound for speed. -parallel-check replays the
// serial reference and fails on any mismatch.
//
// With -json the human-readable report is replaced by a one-job
// rcpn-batch/v1 record on stdout — the same schema cmd/rcpnbatch and the
// rcpnserve job API emit, so CLI, batch and service outputs diff directly.
// -profile adds per-stage stall attribution (a table in text mode, a
// "stalls" object in -json mode); -trace writes the run's last
// -trace-events events as Chrome trace_event JSON (load in
// chrome://tracing or Perfetto), or as the compact RCPNTRC1 binary when
// FILE ends in .bin.
//
// Examples:
//
//	rcpnsim -bench crc                  # RCPN StrongARM on the crc kernel
//	rcpnsim -sim xscale -bench go       # RCPN XScale on the go kernel
//	rcpnsim -sim iss prog.s             # functional golden model on a file
//	rcpnsim -sim pipe5 -bench crc -profile -trace crc.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rcpn/internal/arm"
	"rcpn/internal/batch"
	"rcpn/internal/iss"
	"rcpn/internal/machine"
	"rcpn/internal/obsv"
	"rcpn/internal/pipe5"
	"rcpn/internal/ssim"
	"rcpn/internal/workload"
)

func main() {
	sim := flag.String("sim", "strongarm", "simulator: strongarm, xscale, arm9, ssim, pipe5, func, iss")
	bench := flag.String("bench", "", "built-in benchmark kernel (adpcm, blowfish, compress, crc, g721, go)")
	scale := flag.Int("scale", 1, "benchmark scale factor")
	emit := flag.Bool("emit", false, "print the program's emitted output words")
	pipetrace := flag.Int64("pipetrace", 0, "print a text pipeline trace for the first N cycles (strongarm/xscale)")
	profile := flag.Bool("profile", false, "attribute every stage-cycle to progress or a stall cause and print the table")
	traceFile := flag.String("trace", "", "write an event trace to FILE: Chrome trace_event JSON, or RCPNTRC1 binary when FILE ends in .bin")
	traceEvents := flag.Int("trace-events", 1<<20, "trace ring capacity: the trace keeps the last N events")
	util := flag.Bool("util", false, "print per-transition utilization (RCPN models)")
	jsonOut := flag.Bool("json", false, "emit a one-job rcpn-batch/v1 JSON record instead of the text report")
	parallel := flag.Int("parallel", 0, "time-parallel run: split into N segments simulated concurrently (internal/tpar; any diffrun engine incl. genpipe5)")
	parallelMode := flag.String("parallel-mode", "exact", "time-parallel stitch mode: exact (byte-identical to serial) or sampled (warmup-biased, error bound reported)")
	parallelWorkers := flag.Int("parallel-workers", 0, "concurrent segment workers for -parallel (0 = min(segments, GOMAXPROCS))")
	parallelCheck := flag.Bool("parallel-check", false, "also run the serial segmented reference and fail unless the parallel result matches")
	flag.Parse()

	var (
		p   *arm.Program
		err error
	)
	switch {
	case *bench != "":
		w := workload.ByName(*bench)
		if w == nil {
			fail(fmt.Errorf("unknown benchmark %q", *bench))
		}
		p, err = w.Program(*scale)
	case flag.NArg() == 1:
		src, rerr := os.ReadFile(flag.Arg(0))
		if rerr != nil {
			fail(rerr)
		}
		p, err = arm.Assemble(string(src), 0x8000)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}

	if *parallel > 1 {
		if *traceFile != "" || *pipetrace > 0 || *util {
			fail(fmt.Errorf("-parallel is incompatible with -trace, -pipetrace and -util (segment rings cannot be stitched)"))
		}
		runParallel(p, parallelFlags{
			segments: *parallel, mode: *parallelMode, workers: *parallelWorkers,
			check: *parallelCheck, profile: *profile, jsonOut: *jsonOut,
			emit: *emit, sim: *sim, bench: *bench, arg: flag.Arg(0),
		})
		return
	}

	// Observability attachments. Every simulator implements
	// obsv.Instrumentable, so one hook covers all seven -sim choices.
	var prof *obsv.StallProfile
	var tracer *obsv.Tracer
	if *traceFile != "" {
		if *traceEvents <= 0 {
			fail(fmt.Errorf("-trace-events must be > 0"))
		}
		tracer = obsv.NewTracer(*traceEvents)
	}
	instrument := func(ins obsv.Instrumentable) {
		if *profile {
			prof = ins.EnableProfile()
		}
		if tracer != nil {
			ins.AttachTrace(tracer)
		}
	}

	start := time.Now()
	var (
		cycles   int64
		instret  uint64
		output   []uint32
		text     []byte
		exitCode uint32
		extra    func()
	)
	switch *sim {
	case "strongarm", "xscale", "arm9":
		var m *machine.Machine
		switch *sim {
		case "strongarm":
			m = machine.NewStrongARM(p, machine.Config{})
		case "xscale":
			m = machine.NewXScale(p, machine.Config{})
		default:
			if m, err = machine.NewARM9(p, machine.Config{}); err != nil {
				fail(err)
			}
		}
		if *pipetrace > 0 {
			m.AttachTracer(os.Stdout, *pipetrace)
		}
		instrument(m)
		err = m.Run(0)
		cycles, instret = m.Net.CycleCount(), m.Instret
		output, text, exitCode = m.Output, m.Text, m.ExitCode
		extra = func() {
			if *util {
				fmt.Print(m.UtilizationReport())
			}
			fmt.Printf("flushes:        %d\n", m.Flushes)
			fmt.Printf("icache:         %.2f%% hit (%d accesses)\n",
				100*m.ICache.Stats.HitRatio(), m.ICache.Stats.Accesses())
			fmt.Printf("dcache:         %.2f%% hit (%d accesses)\n",
				100*m.DCache.Stats.HitRatio(), m.DCache.Stats.Accesses())
			fmt.Printf("branch pred:    %.2f%% (%d lookups)\n",
				100*m.Pred.Stats().Accuracy(), m.Pred.Stats().Lookups)
			for _, pl := range m.Net.Places() {
				if pl.Stalls() > 0 {
					fmt.Printf("stalls at %-4s  %d\n", pl.Name+":", pl.Stalls())
				}
			}
		}
	case "ssim":
		s := ssim.New(p, ssim.Config{})
		instrument(s)
		err = s.Run(0)
		cycles, instret = s.Cycles, s.Instret
		output, text, exitCode = s.Output(), s.Text(), s.ExitCode()
		extra = func() { fmt.Printf("recoveries:     %d\n", s.Flushes) }
	case "pipe5":
		s := pipe5.New(p, pipe5.Config{})
		instrument(s)
		err = s.Run(0)
		cycles, instret = s.Cycles, s.Instret
		output, text, exitCode = s.Output, s.Text, s.ExitCode
	case "func":
		m := machine.NewFunctional(p, machine.Config{})
		instrument(m)
		err = m.RunFunctional(0)
		cycles, instret = 0, m.Instret
		output, text, exitCode = m.Output, m.Text, m.ExitCode
	case "iss":
		c := iss.New(p, 0)
		c.MaxInstrs = 1 << 34
		instrument(c)
		err = c.Run()
		cycles, instret = 0, c.Instret
		output, text, exitCode = c.Output, c.Text, c.Exit
	default:
		fail(fmt.Errorf("unknown simulator %q", *sim))
	}
	wall := time.Since(start)
	if err != nil {
		fail(err)
	}

	if *traceFile != "" {
		if werr := writeTrace(tracer, *traceFile); werr != nil {
			fail(werr)
		}
	}

	if *jsonOut {
		wl := *bench
		if wl == "" {
			wl = flag.Arg(0)
		}
		var stalls *obsv.StallSnapshot
		if prof != nil {
			stalls = prof.Snapshot()
		}
		rep := &batch.Report{Workers: 1, Wall: wall, Results: []batch.Result{{
			Simulator: *sim, Workload: wl,
			Metrics: batch.Metrics{Cycles: cycles, Instret: instret, Stalls: stalls},
			Wall:    wall,
		}}}
		data, jerr := rep.JSON(false)
		if jerr != nil {
			fail(jerr)
		}
		os.Stdout.Write(data)
		return
	}

	fmt.Printf("simulator:      %s\n", *sim)
	fmt.Printf("instructions:   %d\n", instret)
	if cycles > 0 {
		fmt.Printf("cycles:         %d\n", cycles)
		fmt.Printf("CPI:            %.3f\n", float64(cycles)/float64(instret))
		fmt.Printf("sim speed:      %.2f Mcycles/s\n", float64(cycles)/wall.Seconds()/1e6)
	} else {
		fmt.Printf("sim speed:      %.2f Minstr/s\n", float64(instret)/wall.Seconds()/1e6)
	}
	fmt.Printf("exit code:      %d\n", exitCode)
	if extra != nil {
		extra()
	}
	if len(text) > 0 {
		fmt.Printf("text output:    %q\n", text)
	}
	if *emit {
		for i, w := range output {
			fmt.Printf("output[%d] = %#x (%d)\n", i, w, w)
		}
	} else if len(output) > 0 {
		fmt.Printf("output words:   %d (run with -emit to print)\n", len(output))
	}
	if prof != nil {
		fmt.Print(prof.Table())
	}
}

// writeTrace renders the tracer's ring: Chrome trace_event JSON by default,
// the RCPNTRC1 binary when the path ends in .bin.
func writeTrace(tr *obsv.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".bin") {
		err = tr.WriteBinary(f)
	} else {
		err = tr.WriteChromeJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rcpnsim:", err)
	os.Exit(1)
}
