package core

import "fmt"

// Step advances the model by one clock cycle (the loop body of Fig. 8):
//
//	mark written tokens as readable in the two-list places;
//	process every place in reverse topological order;
//	execute the instruction-independent (token-generating) sub-net;
//	increment the cycle count.
func (n *Net) Step() {
	if !n.built {
		panic("core: Step before Build")
	}
	for _, p := range n.twoList {
		p.promote()
	}
	for _, p := range n.order {
		n.process(p)
	}
	for _, s := range n.sources {
		n.fireSource(s)
	}
	n.cycle++
}

// Run steps until stop returns true or maxCycles elapses (0 = unlimited);
// it returns the number of cycles executed and an error on cycle overrun.
func (n *Net) Run(stop func() bool, maxCycles int64) (int64, error) {
	start := n.cycle
	for !stop() {
		if maxCycles > 0 && n.cycle-start >= maxCycles {
			return n.cycle - start, fmt.Errorf("core: cycle limit %d exceeded", maxCycles)
		}
		n.Step()
	}
	return n.cycle - start, nil
}

// promote makes staged arrivals of a two-list place visible.
func (p *Place) promote() {
	if len(p.staged) == 0 {
		return
	}
	for _, tok := range p.staged {
		tok.staged = false
	}
	p.tokens = append(p.tokens, p.staged...)
	p.staged = p.staged[:0]
}

// process implements Fig. 7: for every ready instruction token in the place,
// in arrival order, try the statically sorted transitions for its class and
// fire the first enabled one.
func (n *Net) process(p *Place) {
	if p.End {
		return
	}
	for i := 0; i < len(p.tokens); {
		tok := p.tokens[i]
		if tok.movedAt == n.cycle || !tok.Ready(n.cycle) {
			i++
			continue
		}
		fired := false
		cand := p.out[tok.Class]
		if n.dynamicSearch {
			cand = n.candidates(p, tok)
		}
		for _, t := range cand {
			if n.enabled(t, tok) {
				n.fire(t, tok, i)
				fired = true
				break
			}
		}
		if !fired {
			p.Stalls++
			i++
		}
		// On fire the token was removed from index i; the next token is now
		// at i, so i stays put.
	}
}

// candidates returns the transitions to try for tok at p in priority order:
// the precomputed sorted_transitions list normally, or — in the ablation's
// dynamic-search mode — a per-call scan and sort over all transitions, the
// overhead a generic Petri-net simulator pays every cycle.
func (n *Net) candidates(p *Place, tok *Token) []*Transition {
	if !n.dynamicSearch {
		return n.sorted[p.id][tok.Class]
	}
	cand := n.dynScratch[:0]
	for _, t := range n.transitions {
		if t.From == p && (t.Class == AnyClass || t.Class == tok.Class) {
			cand = append(cand, t)
		}
	}
	// Insertion sort by priority (stable, small lists).
	for i := 1; i < len(cand); i++ {
		for j := i; j > 0 && cand[j].Priority < cand[j-1].Priority; j-- {
			cand[j], cand[j-1] = cand[j-1], cand[j]
		}
	}
	n.dynScratch = cand
	return cand
}

// enabled checks a transition against one candidate token: output-stage
// capacity (including reservation-token outputs), reservation-token inputs,
// then the guard.
func (n *Net) enabled(t *Transition, tok *Token) bool {
	if t.needCap && t.capOf.occupancy >= t.capOf.Capacity {
		return false
	}
	if t.hasRes {
		for _, r := range t.ResIn {
			if r.reservations < 1 {
				return false
			}
		}
		for _, r := range t.ResOut {
			// A reservation output to the same stage the token is leaving
			// can reuse the freed slot; otherwise it needs spare capacity.
			need := 1
			if t.From != nil && r.Stage == t.From.Stage {
				need = 0
			}
			if r.Stage.Free() < need {
				return false
			}
		}
	}
	if t.Guard != nil && !t.Guard(tok) {
		return false
	}
	return true
}

// fire executes the transition for tok, currently at index idx of t.From:
// remove the token from its input place, consume reservation inputs, run the
// action, emit reservation outputs, and deliver the token to the output
// place (or retire it at an end place).
func (n *Net) fire(t *Transition, tok *Token, idx int) {
	from := t.From
	copy(from.tokens[idx:], from.tokens[idx+1:])
	from.tokens = from.tokens[:len(from.tokens)-1]
	from.Stage.occupancy--
	tok.place = nil

	for _, r := range t.ResIn {
		r.reservations--
		r.Stage.occupancy--
	}

	if t.Action != nil {
		t.Action(tok)
	}
	t.Fires++

	for _, r := range t.ResOut {
		r.reservations++
		r.Stage.occupancy++
	}

	tok.movedAt = n.cycle
	if t.To.End {
		n.RetiredCount++
		if n.retire != nil {
			n.retire(tok)
		}
		return
	}
	n.deliver(tok, t.To, t.Delay)
}

// deliver places tok into p, computing its residency delay: the token delay
// (if set) overrides the place delay; the transition delay adds.
func (n *Net) deliver(tok *Token, p *Place, transDelay int64) {
	d := p.Delay
	if tok.Delay > 0 {
		d = tok.Delay
		tok.Delay = 0
	}
	d += transDelay
	if d < 1 {
		d = 1
	}
	tok.readyAt = n.cycle + d
	tok.place = p
	p.Stage.occupancy++
	if p.TwoList {
		tok.staged = true
		p.staged = append(p.staged, tok)
	} else {
		p.tokens = append(p.tokens, tok)
	}
}

// fireSource runs one instruction-independent source transition.
func (n *Net) fireSource(s *Source) {
	if !s.To.End && s.To.Stage.Free() < 1 {
		s.Stalls++
		return
	}
	if s.Guard != nil && !s.Guard() {
		s.Stalls++
		return
	}
	tok := s.Fire()
	if tok == nil {
		return
	}
	if tok.Class < 0 || int(tok.Class) >= n.numClasses {
		panic(fmt.Sprintf("core: source %s produced token with bad class %d", s.Name, tok.Class))
	}
	s.Fires++
	tok.movedAt = n.cycle
	n.deliver(tok, s.To, 0)
}

// Inject adds a token produced inside a transition action (micro-operation
// generation: "any sub-net can generate an instruction token and send it to
// its corresponding sub-net"). It reports false, without side effects, when
// the destination stage is full; actions should guard the capacity via the
// transition's Guard or retry next cycle.
func (n *Net) Inject(tok *Token, p *Place) bool {
	if !p.End && p.Stage.Free() < 1 {
		return false
	}
	if p.End {
		n.RetiredCount++
		if n.retire != nil {
			n.retire(tok)
		}
		return true
	}
	tok.movedAt = n.cycle
	n.deliver(tok, p, 0)
	return true
}

// RemoveToken squashes a token wherever it currently is (pipeline flush on
// a mispredicted branch). It reports whether the token was found.
func (n *Net) RemoveToken(tok *Token) bool {
	p := tok.place
	if p == nil {
		return false
	}
	lists := [][]*Token{p.tokens, p.staged}
	for li, list := range lists {
		for i, t := range list {
			if t != tok {
				continue
			}
			copy(list[i:], list[i+1:])
			if li == 0 {
				p.tokens = p.tokens[:len(p.tokens)-1]
			} else {
				p.staged = p.staged[:len(p.staged)-1]
			}
			p.Stage.occupancy--
			tok.place = nil
			tok.staged = false
			return true
		}
	}
	return false
}

// DrainReservations removes all reservation tokens from a place (flush
// support).
func (p *Place) DrainReservations() {
	p.Stage.occupancy -= p.reservations
	p.reservations = 0
}

// NewToken returns a fresh instruction token of the given class and payload.
func NewToken(class ClassID, data any) *Token {
	return &Token{Class: class, Data: data, movedAt: -1, readyAt: -1}
}

// Recycle prepares a retired token for reuse by the simulator's token cache.
func (t *Token) Recycle(class ClassID, data any) {
	t.Class = class
	t.Data = data
	t.Delay = 0
	t.place = nil
	t.readyAt = -1
	t.movedAt = -1
	t.staged = false
}
