// Package store is the durability layer of the simulation service: a
// crash-safe record of every accepted job, its latest checkpoint and its
// final result, kept under a single data directory so an rcpnserve process
// can be killed at any instruction and restarted without losing accepted
// work or finished results.
//
// Three kinds of state, three disciplines:
//
//   - The job journal (journal.log) is an append-only sequence of
//     CRC-framed records — submit, done, failed, drop — fsynced after every
//     append. Recovery replays it to rebuild which jobs were accepted and
//     which finished; a job with no terminal record is still owed to the
//     client and is re-enqueued on restart.
//   - Results (results/<id>.json) and checkpoints (ckpt/<id>.ck) are
//     whole-file values written with the atomic-rename protocol: write to a
//     temp file, fsync, rename into place, fsync the directory. A reader
//     never observes a half-written file.
//   - Anything that fails validation during recovery — a torn journal
//     tail, a frame with a bad CRC, a checkpoint whose payload does not
//     decode — is quarantined (moved into quarantine/) rather than trusted
//     or fatal: recovery always succeeds, degrading the damaged job to
//     "restart from scratch or from the last good state" instead of
//     refusing to boot.
//
// The journal is compacted on every open: after recovery the live state is
// rewritten as a fresh journal (atomic rename again), so the file does not
// grow without bound across restarts and a corrupt tail never survives a
// second boot. Results are byte-identical to the rcpn-batch/v1 payloads the
// service produced, so a cache rebuilt from disk serves the same bytes a
// fresh run would.
//
// Every write site is threaded through internal/faultinj, so tests drive
// the failure paths deterministically.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"rcpn/internal/ckpt"
	"rcpn/internal/faultinj"
	"rcpn/internal/obsv"
)

// Job states as recovered from the journal.
const (
	StatePending = "pending" // accepted, no terminal record: owed to the client
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one recovered job.
type Job struct {
	ID    string
	Spec  []byte // canonical spec bytes ("" when only the result survived)
	State string
	Diag  string // failure diagnostics for StateFailed
	// Result is the rcpn-batch/v1 payload for done/failed jobs, loaded and
	// validated from results/<id>.json.
	Result []byte
}

// journal framing. Each frame is
//
//	u32 payload length | u32 IEEE CRC-32 of payload | payload
//
// after an 12-byte file header (magic + version). A frame that fails any
// check ends the scan: everything before it is trusted, everything from it
// on is quarantined.
var journalMagic = [8]byte{'R', 'C', 'P', 'N', 'J', 'R', 'N', 'L'}

const (
	journalVersion  = 1
	maxFramePayload = 4 << 20 // a spec is capped near 1 MiB; 4 MiB is generous
)

// record is the journal payload, one JSON object per frame.
type record struct {
	Op   string          `json:"op"` // submit | done | failed | drop
	ID   string          `json:"id"`
	Spec json.RawMessage `json:"spec,omitempty"`
	Diag string          `json:"diag,omitempty"`
}

// checkpoint file framing: a fixed header binding the RCPNCKPT payload to
// the job's cumulative progress, CRC-protected so a torn write is detected
// before the codec ever sees it.
var ckptMagic = [8]byte{'R', 'C', 'P', 'N', 'J', 'O', 'B', 'C'}

const ckptVersion = 1

// Store is an open data directory. Methods are safe for concurrent use.
type Store struct {
	dir  string
	inj  *faultinj.Injector
	logf func(format string, args ...any)

	mu      sync.Mutex
	journal *os.File
	qseq    int
}

// Open opens (creating if needed) the data directory, recovers the job set
// from the journal and result files, compacts the journal, and returns the
// store plus the recovered jobs in journal order (orphaned results, if any,
// follow sorted by id). inj may be nil; logf may be nil (quarantine and
// recovery notes are dropped).
func Open(dir string, inj *faultinj.Injector, logf func(string, ...any)) (*Store, []Job, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Store{dir: dir, inj: inj, logf: logf}
	for _, sub := range []string{"", "results", "ckpt", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, nil, fmt.Errorf("store: %w", err)
		}
	}
	jobs, err := s.recover()
	if err != nil {
		return nil, nil, err
	}
	if err := s.compact(jobs); err != nil {
		return nil, nil, err
	}
	return s, jobs, nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Close closes the journal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// ---- journal writes --------------------------------------------------------

// LogSubmit records an accepted job and its canonical spec.
func (s *Store) LogSubmit(id string, spec []byte) error {
	return s.append(record{Op: "submit", ID: id, Spec: json.RawMessage(spec)})
}

// LogDone records successful completion (the result file must already be in
// place, so a crash between the two leaves the job pending, never done-
// without-result).
func (s *Store) LogDone(id string) error {
	return s.append(record{Op: "done", ID: id})
}

// LogFailed records terminal (poisoned) failure with diagnostics.
func (s *Store) LogFailed(id, diag string) error {
	return s.append(record{Op: "failed", ID: id, Diag: diag})
}

// Drop forgets a job: its files are deleted, then a drop record is
// journaled so recovery does not resurrect it. Used when the result cache
// evicts an entry — disk usage tracks the cache bound.
func (s *Store) Drop(id string) error {
	if err := removeIfExists(s.resultPath(id)); err != nil {
		return err
	}
	if err := removeIfExists(s.ckptPath(id)); err != nil {
		return err
	}
	return s.append(record{Op: "drop", ID: id})
}

func (s *Store) append(rec record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encode record: %w", err)
	}
	if err := s.inj.Hit(faultinj.SiteJournalAppend, 0); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return fmt.Errorf("store: journal closed")
	}
	if _, err := s.journal.Write(append(hdr[:], payload...)); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("store: journal sync: %w", err)
	}
	return nil
}

// ---- results ---------------------------------------------------------------

func (s *Store) resultPath(id string) string {
	return filepath.Join(s.dir, "results", id+".json")
}

// WriteResult durably stores the job's rcpn-batch/v1 payload.
func (s *Store) WriteResult(id string, payload []byte) error {
	if err := s.inj.Hit(faultinj.SiteResultWrite, 0); err != nil {
		return err
	}
	return atomicWrite(s.resultPath(id), payload)
}

// ReadResult loads a stored payload. fs.ErrNotExist when absent.
func (s *Store) ReadResult(id string) ([]byte, error) {
	return os.ReadFile(s.resultPath(id))
}

// ---- checkpoints -----------------------------------------------------------

func (s *Store) ckptPath(id string) string {
	return filepath.Join(s.dir, "ckpt", id+".ck")
}

// WriteCheckpoint durably stores the job's latest checkpoint: the encoded
// RCPNCKPT payload plus the cumulative (instret, cycles) at its boundary.
// Atomic-rename, so a crash mid-write leaves the previous checkpoint.
func (s *Store) WriteCheckpoint(id string, instret uint64, cycles int64, payload []byte) error {
	if err := s.inj.Hit(faultinj.SiteCkptWrite, instret); err != nil {
		return err
	}
	buf := make([]byte, 0, 36+len(payload))
	buf = append(buf, ckptMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint64(buf, instret)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(cycles))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return atomicWrite(s.ckptPath(id), buf)
}

// ReadCheckpoint loads and validates the job's checkpoint. A missing file
// returns fs.ErrNotExist; a corrupt one (bad magic, length, CRC, or a
// payload the RCPNCKPT codec rejects) is quarantined and then reported as
// fs.ErrNotExist — the caller restarts the job from scratch, never crashes.
func (s *Store) ReadCheckpoint(id string) (instret uint64, cycles int64, payload []byte, err error) {
	if err := s.inj.Hit(faultinj.SiteCkptRead, 0); err != nil {
		return 0, 0, nil, err
	}
	path := s.ckptPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, err
	}
	instret, cycles, payload, verr := parseCkptFile(data)
	if verr != nil {
		s.Quarantine(path, verr.Error())
		return 0, 0, nil, fmt.Errorf("store: checkpoint %s quarantined (%v): %w", short(id), verr, fs.ErrNotExist)
	}
	return instret, cycles, payload, nil
}

func parseCkptFile(data []byte) (instret uint64, cycles int64, payload []byte, err error) {
	if len(data) < 36 || [8]byte(data[:8]) != ckptMagic {
		return 0, 0, nil, fmt.Errorf("bad header")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != ckptVersion {
		return 0, 0, nil, fmt.Errorf("unsupported version %d", v)
	}
	instret = binary.LittleEndian.Uint64(data[12:])
	cycles = int64(binary.LittleEndian.Uint64(data[20:]))
	sum := binary.LittleEndian.Uint32(data[28:])
	n := binary.LittleEndian.Uint32(data[32:])
	payload = data[36:]
	if uint32(len(payload)) != n {
		return 0, 0, nil, fmt.Errorf("payload length %d, header says %d", len(payload), n)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, 0, nil, fmt.Errorf("payload CRC mismatch")
	}
	// Profiled jobs frame a stall snapshot ahead of the engine bytes
	// (obsv.WrapStalls); validate whichever part the RCPNCKPT codec owns.
	_, engine := obsv.SplitStalls(payload)
	if _, err := ckpt.FromBytes(engine); err != nil {
		return 0, 0, nil, fmt.Errorf("payload does not decode: %v", err)
	}
	return instret, cycles, payload, nil
}

// DeleteCheckpoint removes the job's checkpoint (finished jobs do not need
// one). Missing is not an error.
func (s *Store) DeleteCheckpoint(id string) error {
	return removeIfExists(s.ckptPath(id))
}

// QuarantineCheckpoint moves the job's checkpoint aside (used when a
// structurally valid checkpoint fails to restore into a simulator).
func (s *Store) QuarantineCheckpoint(id, why string) {
	s.Quarantine(s.ckptPath(id), why)
}

// ---- quarantine ------------------------------------------------------------

// Quarantine moves path into the quarantine directory with a sequence
// suffix, logging why. Best-effort: quarantine failures are logged, never
// propagated, because quarantine runs on paths that are already damaged.
func (s *Store) Quarantine(path, why string) {
	s.mu.Lock()
	s.qseq++
	seq := s.qseq
	s.mu.Unlock()
	dst := filepath.Join(s.dir, "quarantine", fmt.Sprintf("%s.%d", filepath.Base(path), seq))
	if err := os.Rename(path, dst); err != nil {
		if !os.IsNotExist(err) {
			s.logf("store: quarantine %s: %v", path, err)
		}
		return
	}
	s.logf("store: quarantined %s -> %s: %s", filepath.Base(path), filepath.Base(dst), why)
}

// QuarantineCount reports how many files sit in quarantine (observability
// and tests).
func (s *Store) QuarantineCount() int {
	ents, err := os.ReadDir(filepath.Join(s.dir, "quarantine"))
	if err != nil {
		return 0
	}
	return len(ents)
}

// ---- recovery --------------------------------------------------------------

func (s *Store) journalPath() string { return filepath.Join(s.dir, "journal.log") }

// recover replays the journal and loads result files, returning the live
// job set. Never fails on damaged content — only on environmental errors
// (unreadable directory).
func (s *Store) recover() ([]Job, error) {
	type slot struct {
		j     Job
		order int
	}
	jobs := make(map[string]*slot)
	order := 0

	data, err := os.ReadFile(s.journalPath())
	switch {
	case os.IsNotExist(err):
		// Fresh directory: nothing to replay.
	case err != nil:
		return nil, fmt.Errorf("store: read journal: %w", err)
	default:
		rest, verr := checkJournalHeader(data)
		if verr != nil {
			s.Quarantine(s.journalPath(), verr.Error())
		} else {
			consumed := 0
			for len(rest) > 0 {
				rec, n, ferr := readFrame(rest)
				if ferr != nil {
					s.Quarantine(s.journalPath(), fmt.Sprintf("frame at offset %d: %v (recovered %d records)",
						12+consumed, ferr, order))
					break
				}
				rest = rest[n:]
				consumed += n
				sl := jobs[rec.ID]
				if sl == nil {
					sl = &slot{j: Job{ID: rec.ID}, order: order}
					order++
					jobs[rec.ID] = sl
				}
				switch rec.Op {
				case "submit":
					sl.j.Spec = []byte(rec.Spec)
					if sl.j.State == "" {
						sl.j.State = StatePending
					}
				case "done":
					sl.j.State = StateDone
				case "failed":
					sl.j.State = StateFailed
					sl.j.Diag = rec.Diag
				case "drop":
					delete(jobs, rec.ID)
				default:
					s.logf("store: journal: unknown op %q for %s (ignored)", rec.Op, short(rec.ID))
				}
			}
		}
	}

	var out []Job
	for _, sl := range jobs {
		out = append(out, sl.j)
	}
	sort.Slice(out, func(i, k int) bool { return jobs[out[i].ID].order < jobs[out[k].ID].order })

	// Attach results; a terminal job whose payload is missing or damaged
	// degrades to pending (re-run; results are deterministic) when its spec
	// survives, else it is dropped.
	live := out[:0]
	for _, j := range out {
		if j.State == StateDone || j.State == StateFailed {
			payload, err := s.ReadResult(j.ID)
			switch {
			case err == nil && json.Valid(payload):
				j.Result = payload
			case err == nil:
				s.Quarantine(s.resultPath(j.ID), "result is not valid JSON")
				fallthrough
			default:
				if len(j.Spec) == 0 {
					s.logf("store: %s job %s has no result and no spec; dropping", j.State, short(j.ID))
					continue
				}
				s.logf("store: %s job %s lost its result; re-running", j.State, short(j.ID))
				j.State, j.Diag, j.Result = StatePending, "", nil
			}
			// Terminal jobs keep no checkpoint.
			if j.State != StatePending {
				removeIfExists(s.ckptPath(j.ID)) //nolint:errcheck // best-effort cleanup
			}
		}
		if j.State == StatePending && len(j.Spec) == 0 {
			s.logf("store: pending job %s has no spec; dropping", short(j.ID))
			continue
		}
		live = append(live, j)
	}
	out = live

	// Adopt orphaned result files (journal lost or quarantined): the file
	// name is the content address and the payload is self-describing, so the
	// result is still servable even though the spec is gone.
	seen := make(map[string]bool, len(out))
	for _, j := range out {
		seen[j.ID] = true
	}
	ents, err := os.ReadDir(filepath.Join(s.dir, "results"))
	if err != nil {
		return nil, fmt.Errorf("store: scan results: %w", err)
	}
	var orphans []Job
	for _, e := range ents {
		id, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok || seen[id] || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		payload, err := s.ReadResult(id)
		if err != nil || !json.Valid(payload) {
			s.Quarantine(s.resultPath(id), "orphaned result is not valid JSON")
			continue
		}
		s.logf("store: adopted orphaned result %s", short(id))
		orphans = append(orphans, Job{ID: id, State: StateDone, Result: payload})
	}
	sort.Slice(orphans, func(i, k int) bool { return orphans[i].ID < orphans[k].ID })
	return append(out, orphans...), nil
}

func checkJournalHeader(data []byte) (rest []byte, err error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("short header (%d bytes)", len(data))
	}
	if [8]byte(data[:8]) != journalMagic {
		return nil, fmt.Errorf("bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != journalVersion {
		return nil, fmt.Errorf("unsupported version %d", v)
	}
	return data[12:], nil
}

func readFrame(data []byte) (rec record, n int, err error) {
	if len(data) < 8 {
		return rec, 0, fmt.Errorf("truncated frame header (%d bytes)", len(data))
	}
	ln := binary.LittleEndian.Uint32(data[0:])
	sum := binary.LittleEndian.Uint32(data[4:])
	if ln > maxFramePayload {
		return rec, 0, fmt.Errorf("frame length %d exceeds limit", ln)
	}
	if len(data) < 8+int(ln) {
		return rec, 0, fmt.Errorf("truncated frame payload (%d of %d bytes)", len(data)-8, ln)
	}
	payload := data[8 : 8+ln]
	if crc32.ChecksumIEEE(payload) != sum {
		return rec, 0, fmt.Errorf("frame CRC mismatch")
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, 0, fmt.Errorf("frame is not a record: %v", err)
	}
	if rec.ID == "" {
		return rec, 0, fmt.Errorf("frame record has no id")
	}
	return rec, 8 + int(ln), nil
}

// compact rewrites the journal to exactly the live state and opens it for
// appending.
func (s *Store) compact(jobs []Job) error {
	var buf []byte
	buf = append(buf, journalMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, journalVersion)
	frame := func(rec record) error {
		payload, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
		buf = append(buf, payload...)
		return nil
	}
	for _, j := range jobs {
		if len(j.Spec) > 0 {
			if err := frame(record{Op: "submit", ID: j.ID, Spec: json.RawMessage(j.Spec)}); err != nil {
				return fmt.Errorf("store: compact: %w", err)
			}
		}
		switch j.State {
		case StateDone:
			if err := frame(record{Op: "done", ID: j.ID}); err != nil {
				return fmt.Errorf("store: compact: %w", err)
			}
		case StateFailed:
			if err := frame(record{Op: "failed", ID: j.ID, Diag: j.Diag}); err != nil {
				return fmt.Errorf("store: compact: %w", err)
			}
		}
	}
	if err := atomicWrite(s.journalPath(), buf); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	f, err := os.OpenFile(s.journalPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open journal: %w", err)
	}
	s.mu.Lock()
	s.journal = f
	s.mu.Unlock()
	return nil
}

// ---- file primitives -------------------------------------------------------

// atomicWrite is the durable whole-file write: temp file in the same
// directory, fsync, rename over the target, fsync the directory.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", dir, err)
	}
	return nil
}

func removeIfExists(path string) error {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// short abbreviates a content address for logs.
func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
