package arm

import (
	"testing"
	"testing/quick"
)

func TestCondPasses(t *testing.T) {
	cases := []struct {
		c          Cond
		n, z, f, v bool
		want       bool
	}{
		{EQ, false, true, false, false, true},
		{EQ, false, false, false, false, false},
		{NE, false, false, false, false, true},
		{CS, false, false, true, false, true},
		{CC, false, false, true, false, false},
		{MI, true, false, false, false, true},
		{PL, true, false, false, false, false},
		{VS, false, false, false, true, true},
		{VC, false, false, false, true, false},
		{HI, false, false, true, false, true},
		{HI, false, true, true, false, false},
		{LS, false, true, true, false, true},
		{GE, true, false, false, true, true},
		{GE, true, false, false, false, false},
		{LT, true, false, false, false, true},
		{GT, false, false, false, false, true},
		{GT, false, true, false, false, false},
		{LE, false, true, false, false, true},
		{AL, false, false, false, false, true},
		{NV, true, true, true, true, false},
	}
	for _, c := range cases {
		if got := c.c.Passes(c.n, c.z, c.f, c.v); got != c.want {
			t.Errorf("%v.Passes(%v,%v,%v,%v) = %v, want %v", c.c, c.n, c.z, c.f, c.v, got, c.want)
		}
	}
}

// Every cond either passes or its logical complement passes (except AL/NV).
func TestCondComplement(t *testing.T) {
	pairs := [][2]Cond{{EQ, NE}, {CS, CC}, {MI, PL}, {VS, VC}, {HI, LS}, {GE, LT}, {GT, LE}}
	err := quick.Check(func(n, z, c, v bool) bool {
		for _, p := range pairs {
			if p[0].Passes(n, z, c, v) == p[1].Passes(n, z, c, v) {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEncodeImmRoundTrip(t *testing.T) {
	// Every encodable immediate must decode back to itself through the DP
	// immediate decode path.
	check := func(v uint32) bool {
		enc, ok := EncodeImm(v)
		if !ok {
			return true // not encodable: nothing to check
		}
		w, err := EncodeDP(AL, OpMOV, false, 1, 0, ImmOp(v))
		if err != nil {
			return false
		}
		_ = enc
		ins := Decode(w, 0)
		return ins.Class == ClassDataProc && ins.HasImm && ins.Imm == v
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint32{0, 1, 0xff, 0x100, 0xff0, 0xff00, 0xff000000, 0xf000000f, 0x3fc} {
		if !check(v) {
			t.Errorf("immediate %#x failed round trip", v)
		}
	}
}

func TestEncodeImmRejects(t *testing.T) {
	for _, v := range []uint32{0x101, 0xff1, 0x12345678, 0xffff} {
		if _, ok := EncodeImm(v); ok {
			t.Errorf("EncodeImm(%#x) unexpectedly succeeded", v)
		}
	}
}

func TestDecodeDPFields(t *testing.T) {
	w, err := EncodeDP(NE, OpADD, true, 3, 4, ShiftedOp(5, LSR, 7))
	if err != nil {
		t.Fatal(err)
	}
	ins := Decode(w, 0x8000)
	if ins.Class != ClassDataProc || ins.Cond != NE || ins.Op != OpADD ||
		!ins.SetFlags || ins.Rd != 3 || ins.Rn != 4 || ins.Rm != 5 ||
		ins.ShiftTyp != LSR || ins.ShiftAmt != 7 || ins.HasImm || ins.ShiftReg {
		t.Fatalf("bad decode: %+v", ins)
	}
}

func TestDecodeRegShift(t *testing.T) {
	w, err := EncodeDP(AL, OpORR, false, 1, 2, Operand2{Rm: 3, ShiftTyp: ASR, ShiftReg: true, Rs: 4})
	if err != nil {
		t.Fatal(err)
	}
	ins := Decode(w, 0)
	if !ins.ShiftReg || ins.Rs != 4 || ins.Rm != 3 || ins.ShiftTyp != ASR {
		t.Fatalf("bad reg-shift decode: %+v", ins)
	}
}

func TestDecodeMul(t *testing.T) {
	w := EncodeMul(AL, true, true, 2, 3, 4, 5)
	ins := Decode(w, 0)
	if ins.Class != ClassMult || !ins.Accum || !ins.SetFlags ||
		ins.Rd != 2 || ins.Rm != 3 || ins.Rs != 4 || ins.Rn != 5 {
		t.Fatalf("bad MLA decode: %+v", ins)
	}
}

func TestDecodeLS(t *testing.T) {
	w, err := EncodeLS(AL, true, true, 1, MemMode{Rn: 2, Off: ImmOp(20), Up: true, PreIndex: true, Writeback: true})
	if err != nil {
		t.Fatal(err)
	}
	ins := Decode(w, 0)
	if ins.Class != ClassLoadStore || !ins.Load || !ins.Byte || !ins.PreIndex ||
		!ins.Up || !ins.Writeback || ins.Rn != 2 || ins.Rd != 1 || !ins.HasImm || ins.Imm != 20 {
		t.Fatalf("bad LDRB decode: %+v", ins)
	}
}

func TestDecodeBranchOffsets(t *testing.T) {
	for _, tc := range []struct{ addr, target uint32 }{
		{0x8000, 0x8000},   // self
		{0x8000, 0x8008},   // +8 (offset 0)
		{0x8000, 0x7000},   // backward
		{0x8000, 0x108000}, // far forward
	} {
		w, err := EncodeBranch(AL, false, tc.addr, tc.target)
		if err != nil {
			t.Fatal(err)
		}
		ins := Decode(w, tc.addr)
		if ins.Class != ClassBranch || ins.Target() != tc.target {
			t.Errorf("branch %#x->%#x decoded target %#x", tc.addr, tc.target, ins.Target())
		}
	}
}

func TestDecodeBranchRange(t *testing.T) {
	if _, err := EncodeBranch(AL, false, 0x8000, 0x8000+(1<<26)); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := EncodeBranch(AL, false, 0x8000, 0x8002); err == nil {
		t.Error("expected alignment error")
	}
}

func TestDecodeSWI(t *testing.T) {
	ins := Decode(EncodeSWI(AL, 42), 0)
	if ins.Class != ClassSystem || ins.SWINum != 42 || ins.Undefined() {
		t.Fatalf("bad SWI decode: %+v", ins)
	}
}

func TestDecodeUndefined(t *testing.T) {
	// Coprocessor space (1110 110... ) is outside the subset.
	ins := Decode(0xec000000, 0)
	if !ins.Undefined() {
		t.Fatalf("expected undefined, got %+v", ins)
	}
}

// Decoding any word never panics and always yields a class.
func TestDecodeTotal(t *testing.T) {
	err := quick.Check(func(raw, addr uint32) bool {
		ins := Decode(raw, addr)
		return ins.Class < NumClasses
	}, &quick.Config{MaxCount: 20000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRegListCount(t *testing.T) {
	if n := RegListCount(0); n != 0 {
		t.Errorf("count(0) = %d", n)
	}
	if n := RegListCount(0xffff); n != 16 {
		t.Errorf("count(ffff) = %d", n)
	}
	if n := RegListCount(0x8001); n != 2 {
		t.Errorf("count(8001) = %d", n)
	}
}

func TestWritesPC(t *testing.T) {
	mov, _ := EncodeDP(AL, OpMOV, false, PC, 0, RegOp(LR))
	cases := []struct {
		raw  uint32
		want bool
	}{
		{mustDP(t, OpADD, 0, 1), false},
		{mov, true},
		{EncodeLSM(AL, true, false, true, true, SP, 1<<PC), true},
		{EncodeLSM(AL, true, false, true, true, SP, 1<<4), false},
		{EncodeSWI(AL, 0), false},
	}
	for _, c := range cases {
		ins := Decode(c.raw, 0)
		if ins.WritesPC() != c.want {
			t.Errorf("WritesPC(%08x) = %v, want %v", c.raw, !c.want, c.want)
		}
	}
}

func mustDP(t *testing.T, op DPOp, rd, rn Reg) uint32 {
	t.Helper()
	w, err := EncodeDP(AL, op, false, rd, rn, ImmOp(1))
	if err != nil {
		t.Fatal(err)
	}
	return w
}
