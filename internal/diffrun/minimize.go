package diffrun

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rcpn/internal/arm"
	"rcpn/internal/armgen"
)

// Check evaluates a chunk subset and reports whether it still diverges,
// with the divergence signature (empty when clean). Errors mean the
// candidate could not be evaluated (e.g. failed to assemble) and the
// minimizer treats it as not reproducing.
type Check func(chunks []armgen.Chunk) (sig string, err error)

// CheckEngines builds a Check that assembles the rendered chunks and runs
// them differentially under opt. The returned check runs every candidate
// TWICE and only accepts a divergence whose signature is identical across
// both runs — the determinism re-check that keeps flaky repros out of the
// regression corpus.
func CheckEngines(opt Options) Check {
	return func(chunks []armgen.Chunk) (string, error) {
		src := armgen.Render(chunks)
		p, err := arm.Assemble(src, 0x8000)
		if err != nil {
			return "", err
		}
		first, err := Run(p, opt)
		if err != nil {
			return "", err
		}
		if first.Clean() {
			return "", nil
		}
		second, err := Run(p, opt)
		if err != nil {
			return "", err
		}
		sigA, sigB := first.Signature(), second.Signature()
		if sigA != sigB {
			return "", fmt.Errorf("diffrun: non-deterministic divergence:\n--- run 1\n%s\n--- run 2\n%s", sigA, sigB)
		}
		return sigA, nil
	}
}

// MinimizeResult is the outcome of a minimization.
type MinimizeResult struct {
	Chunks    []armgen.Chunk
	Source    string
	Signature string // divergence signature of the minimized program
	Steps     int    // check evaluations spent
}

// Instructions counts the instruction lines of the minimized program,
// including the exit stub (labels are not instructions).
func (m MinimizeResult) Instructions() int {
	n := 1 // swi #0 stub
	for _, c := range m.Chunks {
		for _, l := range c.Lines {
			if !strings.HasSuffix(l, ":") {
				n++
			}
		}
	}
	return n
}

// engineSet extracts the "engine/variant" keys from a divergence signature —
// the coarse identity of a failure, ignoring the state-diff details that
// legitimately shift as a program shrinks.
func engineSet(sig string) map[string]bool {
	set := make(map[string]bool)
	for _, line := range strings.Split(sig, "\n") {
		if i := strings.Index(line, ": "); i > 0 {
			set[line[:i]] = true
		}
	}
	return set
}

// withinLock reports whether every diverging engine variant in sig was
// already diverging in the original failure. Allowing the set to shrink is
// fine (the smallest repro may witness the bug on one engine only); gaining
// a new engine variant means the candidate tripped a different bug, and
// accepting it would let the minimizer wander away from the failure it was
// asked to isolate.
func withinLock(sig string, lock map[string]bool) bool {
	for key := range engineSet(sig) {
		if !lock[key] {
			return false
		}
	}
	return true
}

// Minimize delta-debugs the chunk list down to a locally minimal program
// that still diverges: it repeatedly tries to delete contiguous chunk
// windows of halving size, keeping any deletion under which the (twice-run,
// determinism-checked) divergence persists, until no single chunk can be
// removed. The input must itself diverge. Candidates are only accepted while
// their diverging engine set stays within the input's — the minimizer stays
// locked on the original failure instead of sliding onto whatever unrelated
// divergence a shrunken program happens to expose.
func Minimize(chunks []armgen.Chunk, check Check) (MinimizeResult, error) {
	res := MinimizeResult{Steps: 1}
	sig, err := check(chunks)
	if err != nil {
		return res, fmt.Errorf("diffrun: minimize: input check failed: %w", err)
	}
	if sig == "" {
		return res, fmt.Errorf("diffrun: minimize: input does not diverge")
	}
	lock := engineSet(sig)

	cur := append([]armgen.Chunk(nil), chunks...)
	startWindow := len(cur) / 2
	if startWindow == 0 && len(cur) > 0 {
		startWindow = 1
	}
	for window := startWindow; window >= 1; {
		removedAny := false
		for start := 0; start+window <= len(cur); {
			cand := make([]armgen.Chunk, 0, len(cur)-window)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+window:]...)
			res.Steps++
			candSig, err := check(cand)
			if err == nil && candSig != "" && withinLock(candSig, lock) {
				cur, sig = cand, candSig
				removedAny = true
				// Do not advance start: the next window slid into place.
			} else {
				start++
			}
		}
		if window == 1 && !removedAny {
			break
		}
		if !removedAny {
			window /= 2
		} else if window > len(cur)/2 {
			window = len(cur) / 2
			if window == 0 {
				window = 1
			}
		}
	}
	res.Chunks = cur
	res.Source = armgen.Render(cur)
	res.Signature = sig
	return res, nil
}

// WriteRegression writes a minimized repro as a committed regression kernel
// under dir: a self-describing assembly file whose comment header carries
// the generator seed and the divergence it witnessed. The conformance
// matrix auto-discovers every *.s file in the directory, so the bug this
// program caught is replayed as a named matrix cell forever after.
func WriteRegression(dir, name string, cfg armgen.Config, m MinimizeResult) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; regression kernel %s — minimized by rcpnfuzz\n", name)
	fmt.Fprintf(&b, "; generator: seed=%d len=%d (armgen)\n", cfg.Seed, cfg.Len)
	fmt.Fprintf(&b, "; %d instructions after minimization\n", m.Instructions())
	b.WriteString(";\n; divergence witnessed at capture time:\n")
	for _, l := range strings.Split(strings.TrimRight(m.Signature, "\n"), "\n") {
		fmt.Fprintf(&b, ";   %s\n", l)
	}
	b.WriteString(m.Source)
	path := filepath.Join(dir, name+".s")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
