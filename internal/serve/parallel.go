package serve

import (
	"context"
	"fmt"

	"rcpn/internal/batch"
	"rcpn/internal/bpred"
	"rcpn/internal/diffrun"
	"rcpn/internal/iss"
	"rcpn/internal/mem"
	"rcpn/internal/tpar"
)

// executeParallel runs a parallelism > 1 job through internal/tpar,
// wrapped in a tpar.Stepper so the ordinary batch.Drive progress loop —
// and with it SSE streams, /v1/jobs polling and the durable result path —
// works unchanged. The stitched result is a pure function of the spec:
// segment count and stitch mode are in the content address, worker count
// and injected crashes are not and must not show in the result bytes.
func (s *Server) executeParallel(ctx context.Context, j *job, build func(*JobSpec) (batch.Stepper, error)) (batch.Metrics, error) {
	p, err := j.spec.program()
	if err != nil {
		return batch.Metrics{}, err
	}
	mode, err := tpar.ParseMode(j.spec.ParallelMode)
	if err != nil {
		return batch.Metrics{}, err
	}
	warm, err := j.spec.warm()
	if err != nil {
		return batch.Metrics{}, err
	}
	segBuild := func() (batch.CheckpointStepper, func() diffrun.State, error) {
		st, err := build(&j.spec)
		if err != nil {
			return nil, nil, err
		}
		cs, ok := st.(batch.CheckpointStepper)
		if !ok {
			return nil, nil, fmt.Errorf("simulator %q cannot run time-parallel: no checkpoint support", j.spec.Simulator)
		}
		return cs, nil, nil
	}
	cap := j.spec.MaxCycles
	if cap <= 0 {
		cap = s.cfg.MaxCycles
	}
	opt := tpar.Options{
		Segments: j.spec.Parallelism,
		Workers:  j.spec.Parallelism,
		Mode:     mode,
		Warm:     warm,
		// max_cycles bounds each segment worker's position (a runaway
		// segment is what a hang looks like here); the serial-equivalent
		// total is bounded by Parallelism times this.
		PosBudget: cap,
		Chunk:     s.cfg.Chunk,
		Context:   ctx,
		Profile:   j.spec.Profile,
		Fault:     s.cfg.Fault,
		Logf: func(format string, args ...any) {
			s.logf("serve: job %s "+format, append([]any{shortID(j.id)}, args...)...)
		},
	}
	st := tpar.NewStepper(p, segBuild, opt)
	err = batch.Drive(ctx, st, 0, s.cfg.Chunk, func(c int64, i uint64) {
		j.cycles.Store(c)
		j.instret.Store(i)
	})
	if err != nil {
		return batch.Metrics{}, err
	}
	res, err := st.Result()
	if err != nil {
		return batch.Metrics{}, err
	}
	m := batch.Metrics{
		Cycles:  res.Cycles,
		Instret: res.Instret,
		Stalls:  res.Stalls,
		// Host- and fault-independent extras only: worker and reassignment
		// counts vary run to run and would break cached-result
		// byte-identity.
		Extra: map[string]float64{
			"segments": float64(res.Plan.Segments),
			"reruns":   float64(res.Reruns),
			"adopted":  float64(res.Adopted),
		},
	}
	if res.Mode == tpar.Sampled {
		m.Extra["err_bound_pct"] = res.ErrBoundPct
	}
	j.cycles.Store(res.Cycles)
	j.instret.Store(res.Instret)
	if res.Stalls != nil {
		j.mu.Lock()
		j.stalls = res.Stalls
		j.mu.Unlock()
	}
	return m, nil
}

// warm builds the leader warm-unit wiring for a parallel job: the spec's
// cache/predictor overrides where present, the simulator's defaults where
// not — the leader must warm units with the exact geometry the segment
// workers restore into. Functional simulators take cold (nil) warm state.
func (s *JobSpec) warm() (func(c *iss.CPU), error) {
	switch s.Simulator {
	case "func", "iss":
		return nil, nil
	}
	if s.Config.isZero() {
		return tpar.DefaultWarm(s.Simulator), nil
	}
	h, err := s.hierarchy()
	if err != nil {
		return nil, err
	}
	pred, err := s.predictor()
	if err != nil {
		return nil, err
	}
	def := mem.DefaultStrongARM()
	if s.Simulator == "xscale" {
		def = mem.DefaultXScale()
	}
	if h.I == nil {
		h.I = def.I
	}
	if h.D == nil {
		h.D = def.D
	}
	if pred == nil {
		if s.Simulator == "xscale" {
			pred = bpred.NewBimodal(128)
		} else {
			pred = bpred.NewNotTaken()
		}
	}
	return func(c *iss.CPU) { c.WarmI, c.WarmD, c.WarmPred = h.I, h.D, pred }, nil
}
