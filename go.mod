module rcpn

go 1.22
