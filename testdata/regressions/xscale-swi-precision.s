; regression kernel xscale-swi-precision — minimized by rcpnfuzz
; generator: seed=4 len=48 (armgen)
; 3 instructions after minimization
;
; divergence witnessed at capture time:
;   xscale/plain: r7 = 0x0, iss 0x0; instret 2, iss 3
;
; The XScale model completes out of order across its ALU and memory pipes:
; the SWI here commits through the ALU pipe in a few cycles while the
; cache-missing load is still holding its memory-pipe slot for the miss
; latency. Simulation used to stop the moment the SWI set Exited, so the
; load never wrote back and never counted as retired. Fixed by draining the
; pipeline after exit (machine.halted); this kernel keeps the trap precise.
_start:
	mov r9, #0x100000
	ldr r7, [r9, #0x84]
	swi #0
