package ssim

import (
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/iss"
)

func crossCheck(t *testing.T, src string) *Sim {
	t.Helper()
	p, err := arm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	golden := iss.New(p, 0)
	golden.MaxInstrs = 2_000_000
	if err := golden.Run(); err != nil {
		t.Fatalf("iss: %v", err)
	}
	s := New(p, Config{})
	if err := s.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if s.ExitCode() != golden.Exit {
		t.Errorf("exit %d, iss %d", s.ExitCode(), golden.Exit)
	}
	if len(s.Output()) != len(golden.Output) {
		t.Fatalf("output %v, iss %v", s.Output(), golden.Output)
	}
	for i := range s.Output() {
		if s.Output()[i] != golden.Output[i] {
			t.Errorf("output[%d] = %#x, iss %#x", i, s.Output()[i], golden.Output[i])
		}
	}
	if string(s.Text()) != string(golden.Text) {
		t.Errorf("text %q, iss %q", s.Text(), golden.Text)
	}
	if s.Instret != golden.Instret {
		t.Errorf("instret %d, iss %d", s.Instret, golden.Instret)
	}
	for r := arm.Reg(0); r < 15; r++ {
		if s.Reg(r) != golden.R[r] {
			t.Errorf("r%d = %#x, iss %#x", r, s.Reg(r), golden.R[r])
		}
	}
	return s
}

func TestOutorderSumLoop(t *testing.T) {
	s := crossCheck(t, `
	mov r0, #0
	mov r1, #1
loop:
	add r0, r0, r1
	add r1, r1, #1
	cmp r1, #101
	bne loop
	swi #1
	swi #0
`)
	if cpi := s.CPI(); cpi < 1.0 || cpi > 8.0 {
		t.Errorf("implausible CPI %.2f", cpi)
	}
	if s.Flushes == 0 {
		t.Error("taken back-edges should cause recoveries under not-taken prediction")
	}
}

func TestOutorderFactorialAndStack(t *testing.T) {
	crossCheck(t, `
_start:
	mov r0, #8
	bl fact
	swi #1
	swi #0
fact:
	cmp r0, #1
	movle r0, #1
	movle pc, lr
	push {r4, lr}
	mov r4, r0
	sub r0, r0, #1
	bl fact
	mul r0, r4, r0
	pop {r4, pc}
`)
}

func TestOutorderMemoryDependences(t *testing.T) {
	// Store-to-load forwarding hazard: the load must observe the store.
	crossCheck(t, `
	ldr r1, =buf
	mov r2, #77
	str r2, [r1]
	ldr r3, [r1]      ; must wait for the store
	mov r0, r3
	swi #1
	mov r2, #0
fill:
	str r2, [r1, r2, lsl #2]
	add r2, r2, #1
	cmp r2, #16
	bne fill
	mov r2, #0
	mov r4, #0
sum:
	ldr r0, [r1, r2, lsl #2]
	add r4, r4, r0
	add r2, r2, #1
	cmp r2, #16
	bne sum
	mov r0, r4
	swi #1
	swi #0
	.align
buf:
	.space 128
`)
}

func TestOutorderBlockTransfer(t *testing.T) {
	crossCheck(t, `
	mov r1, #1
	mov r2, #2
	mov r3, #3
	push {r1-r3}
	mov r1, #0
	mov r2, #0
	mov r3, #0
	pop {r1-r3}
	add r0, r1, r2
	add r0, r0, r3
	swi #1
	swi #0
`)
}

func TestOutorderConditionalsAndFlags(t *testing.T) {
	crossCheck(t, `
	mvn r0, #0
	mov r1, #1
	adds r2, r0, r1
	adc r3, r1, #0
	mov r0, r3
	swi #1
	subs r6, r1, #1
	moveq r0, #42
	movne r0, #7
	swi #1
	mov r4, #3
	mov r5, #20
	movs r6, r5, lsl r4
	mvnmi r0, #0
	movpl r0, r6
	swi #1
	swi #0
`)
}

func TestOutorderPCWrites(t *testing.T) {
	crossCheck(t, `
	ldr r1, =t1
	mov pc, r1
	mov r0, #99
	swi #1
t1:
	mov r0, #5
	swi #1
	ldr pc, =t2
	mov r0, #98
	swi #1
t2:
	mov r0, #6
	swi #1
	swi #0
`)
}

func TestOutorderRUUWindowLimits(t *testing.T) {
	// A tiny RUU still simulates correctly, just slower.
	src := `
	mov r0, #0
	mov r1, #1
loop:
	add r0, r0, r1
	add r1, r1, #1
	cmp r1, #51
	bne loop
	swi #1
	swi #0
`
	p, err := arm.Assemble(src, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	small := New(p, Config{RUUSize: 2, IFQSize: 1})
	if err := small.Run(0); err != nil {
		t.Fatal(err)
	}
	big := New(p, Config{RUUSize: 32, IFQSize: 8, Width: 2})
	if err := big.Run(0); err != nil {
		t.Fatal(err)
	}
	if small.Output()[0] != big.Output()[0] {
		t.Fatal("window size changed results")
	}
	if small.Cycles <= big.Cycles {
		t.Errorf("smaller window should cost cycles: %d vs %d", small.Cycles, big.Cycles)
	}
}

func TestOutorderCycleLimit(t *testing.T) {
	p, err := arm.Assemble("x: b x\n", 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, Config{})
	if err := s.Run(500); err == nil {
		t.Fatal("expected cycle-limit error")
	}
}

func TestOutorderUndefinedSurfaces(t *testing.T) {
	p, err := arm.Assemble(".word 0xec000000\n", 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, Config{})
	if err := s.Run(1000); err == nil {
		t.Fatal("expected undefined-instruction error")
	}
}
