package arm

import (
	"fmt"
	"strings"
)

// Disassemble renders a decoded instruction in UAL-like syntax. It is the
// inverse of the assembler for the supported subset and is used by the
// tracing facilities and the round-trip property tests.
func Disassemble(i *Instr) string {
	c := i.Cond.String()
	switch i.Class {
	case ClassDataProc:
		s := ""
		if i.SetFlags && i.Op.WritesRd() {
			s = "s"
		}
		op2 := disasmOp2(i)
		switch {
		case i.IsCompare():
			return fmt.Sprintf("%s%s %s, %s", i.Op, c, i.Rn, op2)
		case !i.Op.UsesRn():
			return fmt.Sprintf("%s%s%s %s, %s", i.Op, c, s, i.Rd, op2)
		default:
			return fmt.Sprintf("%s%s%s %s, %s, %s", i.Op, c, s, i.Rd, i.Rn, op2)
		}
	case ClassMult:
		s := ""
		if i.SetFlags {
			s = "s"
		}
		if i.Long {
			mn := "umull"
			switch {
			case i.SignedMul && i.Accum:
				mn = "smlal"
			case i.SignedMul:
				mn = "smull"
			case i.Accum:
				mn = "umlal"
			}
			// Rn is RdLo, Rd is RdHi.
			return fmt.Sprintf("%s%s%s %s, %s, %s, %s", mn, c, s, i.Rn, i.Rd, i.Rm, i.Rs)
		}
		if i.Accum {
			return fmt.Sprintf("mla%s%s %s, %s, %s, %s", c, s, i.Rd, i.Rm, i.Rs, i.Rn)
		}
		return fmt.Sprintf("mul%s%s %s, %s, %s", c, s, i.Rd, i.Rm, i.Rs)
	case ClassLoadStore:
		mn := "str"
		if i.Load {
			mn = "ldr"
		}
		sfx := ""
		switch {
		case i.Half && i.SignedLoad:
			sfx = "sh"
		case i.Half:
			sfx = "h"
		case i.Byte && i.SignedLoad:
			sfx = "sb"
		case i.Byte:
			sfx = "b"
		}
		return fmt.Sprintf("%s%s%s %s, %s", mn, c, sfx, i.Rd, disasmMem(i))
	case ClassLoadStoreM:
		mn := "stm"
		if i.Load {
			mn = "ldm"
		}
		mode := map[[2]bool]string{
			{true, false}: "ia", {true, true}: "ib",
			{false, false}: "da", {false, true}: "db",
		}[[2]bool{i.Up, i.PreIndex}]
		wb := ""
		if i.Writeback {
			wb = "!"
		}
		return fmt.Sprintf("%s%s%s %s%s, {%s}", mn, mode, c, i.Rn, wb, disasmRegList(i.RegList))
	case ClassBranch:
		l := ""
		if i.Link {
			l = "l"
		}
		return fmt.Sprintf("b%s%s %#x", l, c, i.Target())
	default:
		if i.Undefined() {
			return fmt.Sprintf(".word %#08x ; undefined", i.Raw)
		}
		return fmt.Sprintf("swi%s %#x", c, i.SWINum)
	}
}

func disasmOp2(i *Instr) string {
	if i.HasImm {
		return fmt.Sprintf("#%d", int32(i.Imm))
	}
	if i.ShiftReg {
		return fmt.Sprintf("%s, %s %s", i.Rm, i.ShiftTyp, i.Rs)
	}
	if i.ShiftAmt == 0 && i.ShiftTyp == LSL {
		return i.Rm.String()
	}
	if i.ShiftAmt == 0 && i.ShiftTyp == ROR {
		return fmt.Sprintf("%s, rrx", i.Rm)
	}
	amt := uint32(i.ShiftAmt)
	if amt == 0 && (i.ShiftTyp == LSR || i.ShiftTyp == ASR) {
		amt = 32
	}
	return fmt.Sprintf("%s, %s #%d", i.Rm, i.ShiftTyp, amt)
}

func disasmMem(i *Instr) string {
	var off string
	if i.HasImm {
		if i.Imm == 0 && i.PreIndex && !i.Writeback {
			return fmt.Sprintf("[%s]", i.Rn)
		}
		sign := ""
		if !i.Up {
			sign = "-"
		}
		off = fmt.Sprintf("#%s%d", sign, i.Imm)
	} else {
		sign := ""
		if !i.Up {
			sign = "-"
		}
		off = fmt.Sprintf("%s%s", sign, i.Rm)
		if i.ShiftAmt != 0 || i.ShiftTyp != LSL {
			off += fmt.Sprintf(", %s #%d", i.ShiftTyp, i.ShiftAmt)
		}
	}
	if i.PreIndex {
		wb := ""
		if i.Writeback {
			wb = "!"
		}
		return fmt.Sprintf("[%s, %s]%s", i.Rn, off, wb)
	}
	return fmt.Sprintf("[%s], %s", i.Rn, off)
}

func disasmRegList(mask uint16) string {
	var parts []string
	for r := 0; r < 16; {
		if mask&(1<<r) == 0 {
			r++
			continue
		}
		start := r
		for r < 16 && mask&(1<<r) != 0 {
			r++
		}
		if r-start > 1 {
			parts = append(parts, fmt.Sprintf("%s-%s", Reg(start), Reg(r-1)))
		} else {
			parts = append(parts, Reg(start).String())
		}
	}
	return strings.Join(parts, ", ")
}
