package shard

// The conformance suite for the package invariant: sharding is pure
// routing. Every test here runs real workers over real TCP against a real
// coordinator wired into a real serve.Server, injures the cluster in some
// way — a worker killed mid-job, every frame dropped or corrupted, the
// ring resized, the ring empty — and then compares served result bytes
// against a plain single-process server running the same specs.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rcpn/internal/faultinj"
	"rcpn/internal/serve"
	"rcpn/internal/store"
)

// ---- cluster scaffolding ---------------------------------------------------

type workerHandle struct {
	w      *Worker
	cancel context.CancelFunc
	done   chan struct{}
}

type cluster struct {
	t       *testing.T
	coord   *Coordinator
	ln      net.Listener
	srv     *serve.Server
	hs      *httptest.Server
	handles map[string]*workerHandle
	stopped bool
}

// startCluster brings up a coordinator on loopback TCP, n workers built
// from wcfgs, and a serve.Server dispatching through the coordinator. Test
// timings: 50ms heartbeats, so evictions land in fractions of a second.
func startCluster(t *testing.T, scfg serve.Config, ccfg CoordinatorConfig, wcfgs []WorkerConfig) *cluster {
	t.Helper()
	quiet := func(string, ...any) {}
	if ccfg.Heartbeat == 0 {
		ccfg.Heartbeat = 50 * time.Millisecond
	}
	if ccfg.IdleTimeout == 0 {
		ccfg.IdleTimeout = 5 * time.Second
	}
	if ccfg.RetryBase == 0 {
		ccfg.RetryBase = 5 * time.Millisecond
	}
	if ccfg.RetryMax == 0 {
		ccfg.RetryMax = 50 * time.Millisecond
	}
	if ccfg.Logf == nil {
		ccfg.Logf = quiet
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{
		t:       t,
		coord:   NewCoordinator(ccfg),
		ln:      ln,
		handles: make(map[string]*workerHandle),
	}
	go c.coord.Serve(ln) //nolint:errcheck // returns when ln closes

	for i := range wcfgs {
		c.addWorker(wcfgs[i])
	}
	waitLive(t, c.coord, len(wcfgs))

	if scfg.Workers == 0 {
		scfg.Workers = 2
	}
	if scfg.Chunk == 0 {
		scfg.Chunk = 4096
	}
	if scfg.SSEInterval == 0 {
		scfg.SSEInterval = 10 * time.Millisecond
	}
	if scfg.RetryBase == 0 {
		scfg.RetryBase = time.Millisecond
	}
	if scfg.RetryMax == 0 {
		scfg.RetryMax = 5 * time.Millisecond
	}
	scfg.Dispatcher = c.coord
	srv, err := serve.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	c.srv = srv
	c.hs = httptest.NewServer(srv)
	t.Cleanup(c.stop)
	return c
}

// addWorker starts one more worker against the running coordinator.
func (c *cluster) addWorker(wcfg WorkerConfig) {
	c.t.Helper()
	if wcfg.Node == "" {
		wcfg.Node = fmt.Sprintf("w%d", len(c.handles)+1)
	}
	if wcfg.Slots == 0 {
		wcfg.Slots = 2
	}
	if wcfg.Chunk == 0 {
		wcfg.Chunk = 4096
	}
	if wcfg.Heartbeat == 0 {
		wcfg.Heartbeat = 50 * time.Millisecond
	}
	if wcfg.Logf == nil {
		wcfg.Logf = func(string, ...any) {}
	}
	w := NewWorker(wcfg)
	ctx, cancel := context.WithCancel(context.Background())
	h := &workerHandle{w: w, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		w.Run(ctx, c.ln.Addr().String()) //nolint:errcheck // exits on cancel
	}()
	c.handles[wcfg.Node] = h
}

func (c *cluster) stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	if c.hs != nil {
		c.hs.Close()
	}
	if c.srv != nil {
		c.srv.Drain(0)
	}
	for _, h := range c.handles {
		h.cancel()
	}
	for node, h := range c.handles {
		select {
		case <-h.done:
		case <-time.After(5 * time.Second):
			c.t.Errorf("worker %s did not stop", node)
		}
	}
	c.coord.Close()
	c.ln.Close()
}

func waitLive(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Live() != n {
		if time.Now().After(deadline) {
			t.Fatalf("ring never reached %d workers (at %d)", n, c.Live())
		}
		time.Sleep(time.Millisecond)
	}
}

// inflightOwner waits until some worker has a dispatched job in flight and
// returns its coordinator-side handle — the hook the kill tests use to
// murder precisely the worker that owns the job.
func inflightOwner(t *testing.T, c *Coordinator) *remoteWorker {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		for _, w := range c.workers {
			w.mu.Lock()
			n := len(w.inflight)
			w.mu.Unlock()
			if n > 0 {
				c.mu.Unlock()
				return w
			}
		}
		c.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no job ever went in flight on any worker")
	return nil
}

// ---- minimal HTTP client helpers (the serve ones are package-internal) ----

func httpPost(t *testing.T, base, spec string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func submitJob(t *testing.T, base, spec string) string {
	t.Helper()
	code, data := httpPost(t, base, spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d: %s", code, data)
	}
	var r struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &r); err != nil || r.ID == "" {
		t.Fatalf("bad submit response %q: %v", data, err)
	}
	return r.ID
}

// finishedResult polls the job to a terminal state, requires "done", and
// returns the compacted result field — the bytes under comparison.
func finishedResult(t *testing.T, base, id string) string {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, data := httpGet(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job = %d: %s", code, data)
		}
		var v struct {
			State  string          `json:"state"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatal(err)
		}
		switch v.State {
		case serve.StateDone:
			var buf bytes.Buffer
			if err := json.Compact(&buf, v.Result); err != nil {
				t.Fatalf("job %s result is not JSON: %v", id, err)
			}
			return buf.String()
		case serve.StateFailed:
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// refServer is the oracle: a plain single-process server, no dispatcher.
func refServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv, err := serve.New(serve.Config{Workers: 2, Chunk: 4096, SSEInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Drain(0)
	})
	return hs
}

func mustPlan(t *testing.T, plan string) *faultinj.Injector {
	t.Helper()
	inj, err := faultinj.Parse(plan)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// runBoth submits spec to the cluster and the reference and requires the
// same result bytes from both.
func runBoth(t *testing.T, cl *cluster, ref *httptest.Server, spec string) {
	t.Helper()
	got := finishedResult(t, cl.hs.URL, submitJob(t, cl.hs.URL, spec))
	want := finishedResult(t, ref.URL, submitJob(t, ref.URL, spec))
	if got != want {
		t.Fatalf("sharded result differs from single-process for %s:\n%s\nvs\n%s", spec, got, want)
	}
}

// ---- the conformance tests -------------------------------------------------

// TestShardByteIdentityMatrix: every simulator engine, plus the
// checkpointed and time-parallel execution paths, produces byte-identical
// results through a two-worker cluster and a single-process server.
func TestShardByteIdentityMatrix(t *testing.T) {
	cl := startCluster(t, serve.Config{}, CoordinatorConfig{}, []WorkerConfig{{}, {}})
	ref := refServer(t)
	specs := []string{
		`{"simulator":"strongarm","kernel":"crc","scale":1}`,
		`{"simulator":"xscale","kernel":"crc","scale":1}`,
		`{"simulator":"arm9","kernel":"crc","scale":1}`,
		`{"simulator":"ssim","kernel":"crc","scale":1}`,
		`{"simulator":"pipe5","kernel":"crc","scale":1}`,
		`{"simulator":"func","kernel":"crc","scale":1}`,
		`{"simulator":"iss","kernel":"crc","scale":1}`,
		`{"simulator":"pipe5","kernel":"crc","scale":1,"checkpoint_interval":2000}`,
		`{"simulator":"pipe5","kernel":"crc","scale":1,"parallelism":2}`,
	}
	for _, spec := range specs {
		runBoth(t, cl, ref, spec)
	}
	if n := cl.coord.Evictions(); n != 0 {
		t.Fatalf("healthy matrix run evicted %d workers", n)
	}
}

// TestShardWorkerKilledMidJob is the acceptance criterion: find the worker
// that owns an in-flight job, kill it abruptly (context canceled, TCP torn
// down — the in-process double of kill -9), and require the job to finish
// on the survivor with bytes identical to a single-process run.
func TestShardWorkerKilledMidJob(t *testing.T) {
	// The worker.panic delay rule stalls every checkpoint boundary, holding
	// the job in flight long enough to murder its owner deterministically.
	// A delay cannot change result bytes — nothing wall-clock reaches them.
	spec := `{"simulator":"pipe5","kernel":"crc","scale":2,"checkpoint_interval":2000}`
	cl := startCluster(t, serve.Config{}, CoordinatorConfig{}, []WorkerConfig{
		{Fault: mustPlan(t, "worker.panic*-1:delay=40ms")},
		{Fault: mustPlan(t, "worker.panic*-1:delay=40ms")},
	})
	ref := refServer(t)

	id := submitJob(t, cl.hs.URL, spec)
	owner := inflightOwner(t, cl.coord)
	h := cl.handles[owner.node]
	if h == nil {
		t.Fatalf("in-flight owner %q is not a worker this test started", owner.node)
	}
	h.cancel()         // the worker process is gone
	owner.conn.Close() // and so is its TCP connection, mid-stream

	got := finishedResult(t, cl.hs.URL, id)
	want := finishedResult(t, ref.URL, submitJob(t, ref.URL, spec))
	if got != want {
		t.Fatalf("result after mid-job worker death differs from single-process:\n%s\nvs\n%s", got, want)
	}
	if n := cl.coord.Evictions(); n < 1 {
		t.Fatalf("evictions = %d, want >= 1", n)
	}
	if n := cl.coord.Reassignments(); n < 1 {
		t.Fatalf("reassignments = %d, want >= 1", n)
	}
	survivor := "w1"
	if owner.node == "w1" {
		survivor = "w2"
	}
	if cl.handles[survivor].w.Executed() < 1 {
		t.Fatalf("survivor %s never executed the reassigned job", survivor)
	}
}

// TestShardDroppedFramesEvict: a worker whose every outbound frame is
// silently dropped looks exactly like a dead host. The coordinator must
// evict it on heartbeat silence and the server must still produce correct
// bytes (here by degrading to local execution — the ring is empty after
// the only worker dies).
func TestShardDroppedFramesEvict(t *testing.T) {
	cl := startCluster(t, serve.Config{}, CoordinatorConfig{}, []WorkerConfig{
		{Fault: mustPlan(t, "rpc.drop*-1:error")},
	})
	ref := refServer(t)
	runBoth(t, cl, ref, `{"simulator":"strongarm","kernel":"crc","scale":1}`)
	deadline := time.Now().Add(5 * time.Second)
	for cl.coord.Evictions() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("mute worker never evicted (evictions = %d)", cl.coord.Evictions())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardCorruptFramesEvict: corruption is even louder than loss — the
// CRC fails on the first damaged frame and the worker is evicted
// immediately, with result bytes again unharmed.
func TestShardCorruptFramesEvict(t *testing.T) {
	cl := startCluster(t, serve.Config{}, CoordinatorConfig{}, []WorkerConfig{
		{Fault: mustPlan(t, "rpc.drop*-1:corrupt")},
	})
	ref := refServer(t)
	runBoth(t, cl, ref, `{"simulator":"xscale","kernel":"crc","scale":1}`)
	deadline := time.Now().Add(5 * time.Second)
	for cl.coord.Evictions() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("corrupting worker never evicted (evictions = %d)", cl.coord.Evictions())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardRingResize: growing the ring mid-stream re-routes new jobs but
// cannot change anyone's bytes, and needs no evictions to do it.
func TestShardRingResize(t *testing.T) {
	cl := startCluster(t, serve.Config{}, CoordinatorConfig{}, []WorkerConfig{{}})
	ref := refServer(t)
	runBoth(t, cl, ref, `{"simulator":"pipe5","kernel":"crc","scale":1}`)
	cl.addWorker(WorkerConfig{})
	waitLive(t, cl.coord, 2)
	runBoth(t, cl, ref, `{"simulator":"pipe5","kernel":"crc","scale":2}`)
	runBoth(t, cl, ref, `{"simulator":"arm9","kernel":"crc","scale":1}`)
	if n := cl.coord.Evictions(); n != 0 {
		t.Fatalf("ring growth evicted %d workers", n)
	}
}

// TestShardZeroWorkersDegraded: a coordinator with an empty ring is not an
// outage — the server executes locally, says so on /healthz, and the bytes
// match a single-process run. (This is the real-coordinator integration of
// the serve-layer fallback test.)
func TestShardZeroWorkersDegraded(t *testing.T) {
	cl := startCluster(t, serve.Config{}, CoordinatorConfig{}, nil)
	ref := refServer(t)
	runBoth(t, cl, ref, `{"simulator":"ssim","kernel":"crc","scale":1}`)
	code, body := httpGet(t, cl.hs.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), "degraded") {
		t.Fatalf("healthz with empty ring = %d %s, want 200 degraded", code, body)
	}
}

// TestShardOrphanAdoption: a result computed and stored by a worker that
// then died wholesale is adopted — served verbatim, not recomputed — by a
// different worker sharing the result store.
func TestShardOrphanAdoption(t *testing.T) {
	dir := t.TempDir()
	spec := `{"simulator":"strongarm","kernel":"crc","scale":3}`
	open := func() *store.Store {
		st, _, err := store.Open(dir, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	cl1 := startCluster(t, serve.Config{}, CoordinatorConfig{}, []WorkerConfig{{Node: "first", Store: open()}})
	want := finishedResult(t, cl1.hs.URL, submitJob(t, cl1.hs.URL, spec))
	if n := cl1.handles["first"].w.Executed(); n != 1 {
		t.Fatalf("first life executed %d jobs, want 1", n)
	}
	cl1.stop() // the first life is over; only the store survives

	cl2 := startCluster(t, serve.Config{}, CoordinatorConfig{}, []WorkerConfig{{Node: "second", Store: open()}})
	got := finishedResult(t, cl2.hs.URL, submitJob(t, cl2.hs.URL, spec))
	if got != want {
		t.Fatalf("adopted result differs from the original:\n%s\nvs\n%s", got, want)
	}
	second := cl2.handles["second"].w
	if second.Adopted() != 1 || second.Executed() != 0 {
		t.Fatalf("adopted=%d executed=%d, want the stored result adopted without re-execution",
			second.Adopted(), second.Executed())
	}
}
