// Quickstart: build the paper's Figure 2 pipeline as an RCPN in a few
// lines, run tokens through it, and print a cycle-by-cycle trace.
//
// The pipeline has two latches (L1, L2) and four units; instructions of
// class "long" flow L1 -> U2 -> L2 -> U3 -> end, instructions of class
// "short" take the bypass L1 -> U4 -> end. In the RCPN there are no
// back-edge capacity loops: a transition is simply enabled only while its
// destination stage has room.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"rcpn/internal/core"
)

func main() {
	const (
		classLong  = 0
		classShort = 1
	)

	n := core.NewNet(2)
	l1 := n.Place("L1", n.Stage("L1", 1))
	l2 := n.Place("L2", n.Stage("L2", 1))
	end := n.EndPlace("end")

	n.AddTransition(&core.Transition{
		Name: "U2", Class: classLong, From: l1, To: l2,
		Action: func(tok *core.Token) {
			fmt.Printf("  cycle %2d: U2 executes instruction %v (L1 -> L2)\n",
				n.CycleCount(), tok.Data)
		},
	})
	n.AddTransition(&core.Transition{
		Name: "U3", Class: classLong, From: l2, To: end,
		Action: func(tok *core.Token) {
			fmt.Printf("  cycle %2d: U3 finishes instruction %v\n", n.CycleCount(), tok.Data)
		},
	})
	n.AddTransition(&core.Transition{
		Name: "U4", Class: classShort, From: l1, To: end,
		Action: func(tok *core.Token) {
			fmt.Printf("  cycle %2d: U4 finishes instruction %v (short path)\n",
				n.CycleCount(), tok.Data)
		},
	})

	// The instruction-independent sub-net: U1 generates instruction tokens
	// while L1 has capacity. Tokens come from a free-list pool refilled by
	// the retire callback, so a long-running model allocates only as many
	// tokens as are ever simultaneously in flight.
	var pool core.TokenPool
	n.OnRetire(pool.Put)
	program := []core.ClassID{classLong, classShort, classLong, classLong, classShort}
	next := 0
	n.AddSource(&core.Source{
		Name: "U1", To: l1,
		Guard: func() bool { return next < len(program) },
		Fire: func() *core.Token {
			tok := pool.Get(program[next], fmt.Sprintf("i%d", next))
			fmt.Printf("  cycle %2d: U1 fetches i%d\n", n.CycleCount(), next)
			next++
			return tok
		},
	})

	n.MustBuild()

	fmt.Println("RCPN model of the paper's Figure 2 pipeline")
	fmt.Printf("places: %d, transitions: %d, evaluation order:", len(n.Places()), len(n.Transitions()))
	for _, p := range n.Order() {
		fmt.Printf(" %s", p.Name)
	}
	fmt.Println()
	fmt.Println("simulating:")

	if _, err := n.Run(func() bool { return n.RetiredCount == uint64(len(program)) }, 100); err != nil {
		panic(err)
	}
	fmt.Printf("done: %d instructions retired in %d cycles (%d Token values allocated)\n",
		n.RetiredCount, n.CycleCount(), pool.Len())

	fmt.Println("\nGraphviz rendering of the model (paste into dot):")
	fmt.Println(n.Dot([]string{"long", "short"}))
}
