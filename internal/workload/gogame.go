package workload

import "fmt"

// goSource is the SPEC95 099.go kernel: the branch-dominated board
// evaluation that characterizes go — pseudo-random play on a 19x19 board
// (21x21 with sentinel border), per-move neighbor inspection with deeply
// nested data-dependent branches, capture-style clearing, and periodic
// whole-board evaluation scans.
func goSource(scale int) string {
	moves := 3000 * scale
	return fmt.Sprintf(`
; go kernel (SPEC95 099.go) — %[1]d pseudo-random moves on a 19x19 board
;
; board: 21x21 bytes; 0 empty, 1 black, 2 white, 3 border sentinel
; registers: r4 = board  r5 = LCG  r6 = moves left  r7 = score
;            r8 = side to move (1/2)  r9 = eval interval counter
_start:
	; draw the border sentinels
	ldr r4, =board
	mov r0, #0
	mov r1, #3
border_top:
	strb r1, [r4, r0]
	add r0, r0, #1
	cmp r0, #21
	blt border_top
	ldr r0, =420              ; last row offset
	mov r2, #0
border_bot:
	add r3, r0, r2
	strb r1, [r4, r3]
	add r2, r2, #1
	cmp r2, #21
	blt border_bot
	mov r0, #21
border_sides:
	strb r1, [r4, r0]
	add r2, r0, #20
	strb r1, [r4, r2]
	add r0, r0, #21
	ldr r2, =420
	cmp r0, r2
	blt border_sides

	ldr r5, =0xcafef00d
	ldr r6, =%[1]d
	mov r7, #0
	mov r8, #1
	mov r9, #0
move_loop:
	; pick a cell: pos = 22 + ((lcg>>12 & 0xffff) * 377) >> 16  (0..376 interior-ish)
	ldr r0, =1664525
	ldr r1, =1013904223
	mla r5, r5, r0, r1
	mov r0, r5, lsr #12
	ldr r1, =0xffff
	and r0, r0, r1
	ldr r1, =377
	mul r0, r0, r1
	mov r0, r0, lsr #16
	add r0, r0, #22           ; skip first row + col

	ldrb r1, [r4, r0]         ; cell
	cmp r1, #0
	bne occupied

	; empty: count empty/own/enemy neighbors (N,S,E,W)
	mov r2, #0                ; liberties
	mov r3, #0                ; own neighbors
	sub r12, r0, #21          ; north
	ldrb r12, [r4, r12]
	cmp r12, #0
	addeq r2, r2, #1
	cmp r12, r8
	addeq r3, r3, #1
	add r12, r0, #21          ; south
	ldrb r12, [r4, r12]
	cmp r12, #0
	addeq r2, r2, #1
	cmp r12, r8
	addeq r3, r3, #1
	sub r12, r0, #1           ; west
	ldrb r12, [r4, r12]
	cmp r12, #0
	addeq r2, r2, #1
	cmp r12, r8
	addeq r3, r3, #1
	add r12, r0, #1           ; east
	ldrb r12, [r4, r12]
	cmp r12, #0
	addeq r2, r2, #1
	cmp r12, r8
	addeq r3, r3, #1

	; play only if the stone has a liberty or a friendly neighbor
	cmp r2, #0
	beq maybe_connect
	strb r8, [r4, r0]
	add r7, r7, r2            ; score by liberties
	eor r8, r8, #3            ; switch side (1 <-> 2)
	b after_move
maybe_connect:
	cmp r3, #2
	blt after_move            ; suicide-ish: skip
	strb r8, [r4, r0]
	add r7, r7, #1
	eor r8, r8, #3
	b after_move

occupied:
	; capture check: remove the stone if it has no empty neighbor
	mov r2, #0
	sub r12, r0, #21
	ldrb r12, [r4, r12]
	cmp r12, #0
	addeq r2, r2, #1
	add r12, r0, #21
	ldrb r12, [r4, r12]
	cmp r12, #0
	addeq r2, r2, #1
	sub r12, r0, #1
	ldrb r12, [r4, r12]
	cmp r12, #0
	addeq r2, r2, #1
	add r12, r0, #1
	ldrb r12, [r4, r12]
	cmp r12, #0
	addeq r2, r2, #1
	cmp r2, #0
	bne after_move
	mov r2, #0
	strb r2, [r4, r0]         ; captured
	sub r7, r7, #2

after_move:
	; every 64 moves, evaluate the whole board
	add r9, r9, #1
	tst r9, #63
	bne no_eval
	mov r0, #22
	ldr r1, =419
	mov r2, #0                ; black count
	mov r3, #0                ; white count
eval_loop:
	ldrb r12, [r4, r0]
	cmp r12, #1
	addeq r2, r2, #1
	cmp r12, #2
	addeq r3, r3, #1
	add r0, r0, #1
	cmp r0, r1
	blt eval_loop
	sub r12, r2, r3
	add r7, r7, r12
no_eval:
	subs r6, r6, #1
	bne move_loop

	mov r0, r7
	swi #1
	; fold the final board state into a second checksum
	mov r0, #0
	mov r1, #0
	ldr r2, =441
fold_loop:
	ldrb r3, [r4, r1]
	add r0, r3, r0, lsl #1
	eor r0, r0, r0, lsr #16
	add r1, r1, #1
	cmp r1, r2
	blt fold_loop
	swi #1
	mov r0, #0
	swi #0
	.ltorg
	.align
board:
	.space 441
`, moves)
}
