// Package shard scales the simulation service across processes: a
// coordinator consistent-hashes each job's content address onto a ring of
// live workers and dispatches over the RCPNRPC1 protocol (internal/rpc).
// The invariant the whole package is built around: sharding is a pure
// routing layer. Workers execute specs through the same executor and
// report renderer as a local server, so which worker ran a job — or how
// many times it was reassigned after crashes, dropped frames or ring
// resizes — never changes the result bytes.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// vnodesPerNode is how many virtual points each worker occupies on the
// ring. More points smooth the load split between workers of one ring;
// the count is a routing detail and cannot affect result bytes.
const vnodesPerNode = 64

type vnode struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over worker names. Jobs hash by content
// address, so the same spec routes to the same worker while the ring is
// stable — which keeps a worker's warm code paths and its shared-store
// results local — and only keys owned by a dead worker move when it is
// evicted.
type Ring struct {
	mu     sync.RWMutex
	vnodes []vnode // sorted by hash
	nodes  map[string]bool
}

func NewRing() *Ring {
	return &Ring{nodes: make(map[string]bool)}
}

func ringHash(key string) uint64 {
	h := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(h[:8])
}

// Add places node's virtual points on the ring. Adding a present node is
// a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < vnodesPerNode; i++ {
		r.vnodes = append(r.vnodes, vnode{hash: ringHash(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.vnodes, func(a, b int) bool { return r.vnodes[a].hash < r.vnodes[b].hash })
}

// Remove evicts node. Keys it owned redistribute to the survivors; keys
// it did not own keep their assignment (the consistent-hashing property
// the reassignment tests pin down).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.vnodes[:0]
	for _, v := range r.vnodes {
		if v.node != node {
			kept = append(kept, v)
		}
	}
	r.vnodes = kept
}

// Lookup routes a key to its owning node: the first virtual point at or
// clockwise after the key's hash. ok is false on an empty ring.
func (r *Ring) Lookup(key string) (node string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.vnodes) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0 // wrap past the top of the ring
	}
	return r.vnodes[i].node, true
}

// Len is the live node count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Nodes lists the live nodes (unordered).
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	return out
}
