package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestParallelSpecValidation: every malformed parallelism combination is a
// 400 at admission, never a failed job.
func TestParallelSpecValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	bad := []string{
		`{"simulator":"pipe5","kernel":"crc","parallelism":-1}`,                           // negative
		`{"simulator":"pipe5","kernel":"crc","parallelism":17}`,                           // over bound
		`{"simulator":"pipe5","kernel":"crc","parallelism":2,"checkpoint_interval":5000}`, // exclusive with ckpt
		`{"simulator":"pipe5","kernel":"crc","parallelism":2,"trace_events":64}`,          // exclusive with trace
		`{"simulator":"pipe5","kernel":"crc","parallel_mode":"sampled"}`,                  // mode without parallelism
		`{"simulator":"pipe5","kernel":"crc","parallelism":1,"parallel_mode":"sampled"}`,  // ditto after 1->0
		`{"simulator":"pipe5","kernel":"crc","parallelism":2,"parallel_mode":"adaptive"}`, // unknown mode
	}
	for _, b := range bad {
		code, _, data := post(t, hs.URL, b)
		if code != http.StatusBadRequest {
			t.Errorf("spec %q: code %d (%s), want 400", b, code, data)
		}
	}
}

// TestParallelCanonicalAddress: parallelism is omitempty and 1 normalizes
// to absent, so every pre-existing spec's content address is unchanged;
// parallelism > 1 (and the stitch mode) hash differently because segment
// drains perturb the cycle-accurate result.
func TestParallelCanonicalAddress(t *testing.T) {
	id := func(body string) string {
		t.Helper()
		sp, err := ParseSpec(strings.NewReader(body))
		if err != nil {
			t.Fatalf("spec %q: %v", body, err)
		}
		return sp.ID()
	}
	base := id(`{"simulator":"pipe5","kernel":"crc","scale":1}`)
	if got := id(`{"simulator":"pipe5","kernel":"crc","scale":1,"parallelism":0}`); got != base {
		t.Errorf("parallelism:0 changed the content address")
	}
	if got := id(`{"simulator":"pipe5","kernel":"crc","scale":1,"parallelism":1}`); got != base {
		t.Errorf("parallelism:1 changed the content address")
	}
	sp, err := ParseSpec(strings.NewReader(`{"simulator":"pipe5","kernel":"crc","scale":1,"parallelism":1,"parallel_mode":"exact"}`))
	if err != nil {
		t.Fatal(err)
	}
	if canon := string(sp.Canonical()); strings.Contains(canon, "parallel") {
		t.Errorf("canonical form of a serial spec mentions parallelism: %s", canon)
	}
	par := id(`{"simulator":"pipe5","kernel":"crc","scale":1,"parallelism":4}`)
	if par == base {
		t.Errorf("parallelism:4 did not change the content address")
	}
	if got := id(`{"simulator":"pipe5","kernel":"crc","scale":1,"parallelism":4,"parallel_mode":"exact"}`); got != par {
		t.Errorf("explicit exact mode hashed differently from the default")
	}
	if got := id(`{"simulator":"pipe5","kernel":"crc","scale":1,"parallelism":4,"parallel_mode":"sampled"}`); got == par {
		t.Errorf("sampled mode did not change the content address")
	}
}

// parallelResult extracts the single job record from a terminal GET body.
func parallelResult(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var v struct {
		Result struct {
			Jobs []map[string]any `json:"jobs"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("bad job body %s: %v", body, err)
	}
	if len(v.Result.Jobs) != 1 {
		t.Fatalf("want 1 job record, got %d: %s", len(v.Result.Jobs), body)
	}
	return v.Result.Jobs[0]
}

// TestParallelJobByteIdentity: the same exact-mode parallel job computed by
// two cold servers — different worker pools, different scheduling — yields
// byte-identical result payloads, and the result carries the segment
// extras.
func TestParallelJobByteIdentity(t *testing.T) {
	spec := `{"simulator":"pipe5","kernel":"crc","parallelism":3,"profile":true}`
	var bodies [2][]byte
	for i, workers := range []int{1, 4} {
		_, hs := newTestServer(t, Config{Workers: workers})
		r := submit(t, hs.URL, spec)
		bodies[i] = waitState(t, hs.URL, r.ID)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatalf("parallel job not byte-identical across cold servers:\n%s\n%s", bodies[0], bodies[1])
	}
	rec := parallelResult(t, bodies[0])
	extra, ok := rec["extra"].(map[string]any)
	if !ok {
		t.Fatalf("result has no extras: %s", bodies[0])
	}
	if extra["segments"] != float64(3) {
		t.Errorf("extra.segments = %v, want 3", extra["segments"])
	}
	if rec["stalls"] == nil {
		t.Errorf("profiled parallel job has no stall snapshot")
	}
}

// TestParallelSampledJob: sampled mode completes and reports its error
// bound in the extras.
func TestParallelSampledJob(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 4})
	spec := `{"simulator":"strongarm","kernel":"crc","parallelism":4,"parallel_mode":"sampled"}`
	r := submit(t, hs.URL, spec)
	body := waitState(t, hs.URL, r.ID)
	rec := parallelResult(t, body)
	if rec["error"] != nil && rec["error"] != "" {
		t.Fatalf("sampled job failed: %s", body)
	}
	extra, ok := rec["extra"].(map[string]any)
	if !ok {
		t.Fatalf("result has no extras: %s", body)
	}
	if _, ok := extra["err_bound_pct"]; !ok {
		t.Errorf("sampled result missing err_bound_pct: %v", extra)
	}
	if extra["adopted"] != extra["segments"] {
		t.Errorf("sampled mode must adopt every segment: %v", extra)
	}
}
