package main

import (
	"fmt"
	"os"
	"reflect"
	"time"

	"rcpn/internal/arm"
	"rcpn/internal/batch"
	"rcpn/internal/diffrun"
	"rcpn/internal/obsv"
	"rcpn/internal/tpar"
)

// parallelFlags is the -parallel* flag set handed over by main.
type parallelFlags struct {
	segments int
	mode     string
	workers  int
	check    bool
	profile  bool
	jsonOut  bool
	emit     bool
	sim      string
	bench    string
	arg      string
}

// runParallel executes one program time-parallel (internal/tpar) on any
// engine in the diffrun registry — generated engines included — and prints
// the report. With -parallel-check it additionally runs the serial
// segmented reference on the same plan and fails loudly unless the
// stitched exact-mode result is identical (the CI smoke job's byte-compare).
func runParallel(p *arm.Program, f parallelFlags) {
	var engine *diffrun.Engine
	for _, e := range diffrun.Engines() {
		if e.Name == f.sim {
			e := e
			engine = &e
			break
		}
	}
	if engine == nil {
		fail(fmt.Errorf("simulator %q is not in the engine registry (run -parallel with one of the diffrun engines)", f.sim))
	}
	mode, err := tpar.ParseMode(f.mode)
	if err != nil {
		fail(err)
	}
	opt := tpar.Options{
		Segments: f.segments,
		Workers:  f.workers,
		Mode:     mode,
		Warm:     tpar.DefaultWarm(f.sim),
		Profile:  f.profile,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "rcpnsim: "+format+"\n", args...)
		},
	}
	plan, err := tpar.NewPlan(p, opt)
	if err != nil {
		fail(err)
	}
	start := time.Now()
	res, err := tpar.RunPlan(p, plan, tpar.EngineBuild(*engine, p), opt)
	if err != nil {
		fail(err)
	}
	wall := time.Since(start)

	var ser *tpar.Result
	var serWall time.Duration
	if f.check {
		serStart := time.Now()
		ser, err = tpar.Serial(plan, tpar.EngineBuild(*engine, p), opt)
		if err != nil {
			fail(err)
		}
		serWall = time.Since(serStart)
	}

	if f.jsonOut {
		wl := f.bench
		if wl == "" {
			wl = f.arg
		}
		extra := map[string]float64{
			"segments": float64(res.Plan.Segments),
			"workers":  float64(res.Workers),
			"reruns":   float64(res.Reruns),
			"adopted":  float64(res.Adopted),
		}
		if res.Mode == tpar.Sampled {
			extra["err_bound_pct"] = res.ErrBoundPct
		}
		rep := &batch.Report{Workers: res.Workers, Wall: wall, Results: []batch.Result{{
			Simulator: f.sim, Workload: wl,
			Metrics: batch.Metrics{Cycles: res.Cycles, Instret: res.Instret,
				Extra: extra, Stalls: res.Stalls},
			Wall: wall,
		}}}
		data, jerr := rep.JSON(false)
		if jerr != nil {
			fail(jerr)
		}
		os.Stdout.Write(data)
	} else {
		printParallelReport(f, res, wall)
	}

	if f.check {
		if err := checkAgainstSerial(res, ser); err != nil {
			fail(fmt.Errorf("-parallel-check: %v", err))
		}
		fmt.Fprintf(os.Stderr, "rcpnsim: -parallel-check ok: parallel run identical to serial reference (serial %.2fs, parallel %.2fs, %.2fx)\n",
			serWall.Seconds(), wall.Seconds(), serWall.Seconds()/wall.Seconds())
	}
}

func printParallelReport(f parallelFlags, res *tpar.Result, wall time.Duration) {
	fmt.Printf("simulator:      %s (time-parallel, %s mode)\n", f.sim, res.Mode)
	fmt.Printf("segments:       %d x %d instructions (%d workers)\n",
		res.Plan.Segments, res.Plan.Interval, res.Workers)
	fmt.Printf("instructions:   %d\n", res.Instret)
	if res.Cycles > 0 {
		fmt.Printf("cycles:         %d\n", res.Cycles)
		fmt.Printf("CPI:            %.3f\n", float64(res.Cycles)/float64(res.Instret))
		fmt.Printf("sim speed:      %.2f Mcycles/s\n", float64(res.Cycles)/wall.Seconds()/1e6)
	} else {
		fmt.Printf("sim speed:      %.2f Minstr/s\n", float64(res.Instret)/wall.Seconds()/1e6)
	}
	fmt.Printf("stitch:         %d adopted, %d rerun, %d reassigned\n",
		res.Adopted, res.Reruns, res.Reassigned)
	if res.Mode == tpar.Sampled {
		fmt.Printf("error bound:    %.3f%% (cycle-weighted warmup bias)\n", res.ErrBoundPct)
	}
	if res.State != nil {
		fmt.Printf("exit code:      %d\n", res.State.Exit)
		if len(res.State.Text) > 0 {
			fmt.Printf("text output:    %q\n", res.State.Text)
		}
		if f.emit {
			for i, w := range res.State.Output {
				fmt.Printf("output[%d] = %#x (%d)\n", i, w, w)
			}
		} else if n := len(res.State.Output); n > 0 {
			fmt.Printf("output words:   %d (run with -emit to print)\n", n)
		}
	}
	fmt.Printf("%-4s %12s %12s %8s %7s %s\n", "seg", "start", "end", "cycles", "CPI", "notes")
	for _, sg := range res.Segments {
		cpi := ""
		if n := sg.End - sg.Start; n > 0 && sg.Cycles > 0 {
			cpi = fmt.Sprintf("%.3f", float64(sg.Cycles)/float64(n))
		}
		notes := ""
		switch {
		case sg.Rerun:
			notes = "rerun"
		case sg.Adopted:
			notes = "adopted"
		}
		if sg.Exited {
			notes += " exit"
		}
		if sg.Reassigned > 0 {
			notes += fmt.Sprintf(" reassigned x%d", sg.Reassigned)
		}
		if sg.ErrBoundPct > 0 {
			notes += fmt.Sprintf(" ±%.2f%%", sg.ErrBoundPct)
		}
		fmt.Printf("%-4d %12d %12d %8d %7s %s\n", sg.Index, sg.Start, sg.End, sg.Cycles, cpi, notes)
	}
	if res.Stalls != nil {
		printStallSnapshot(res.Stalls)
	}
}

// printStallSnapshot renders a merged snapshot through a fresh profile so
// the text table matches the serial -profile output.
func printStallSnapshot(snap *obsv.StallSnapshot) {
	names := make([]string, len(snap.Stages))
	for i := range snap.Stages {
		names[i] = snap.Stages[i].Name
	}
	p := obsv.NewStallProfile(names...)
	if err := p.Merge(snap); err == nil {
		fmt.Print(p.Table())
	}
}

// checkAgainstSerial compares the stitched parallel result with the serial
// segmented reference: cycles, instructions, final state and stall profile
// must all match (exact mode's contract; in sampled mode it reports the
// achieved error instead of failing).
func checkAgainstSerial(par, ser *tpar.Result) error {
	if par.Mode == tpar.Sampled {
		errPct := 100 * abs64(par.Cycles-ser.Cycles) / float64(ser.Cycles)
		fmt.Fprintf(os.Stderr, "rcpnsim: sampled mode achieved %.3f%% cycle error (bound claimed %.3f%%) vs serial reference\n",
			errPct, par.ErrBoundPct)
		if !reflect.DeepEqual(par.State, ser.State) {
			return fmt.Errorf("final architectural state differs from serial reference")
		}
		return nil
	}
	if par.Cycles != ser.Cycles {
		return fmt.Errorf("cycles differ: parallel %d, serial %d", par.Cycles, ser.Cycles)
	}
	if par.Instret != ser.Instret {
		return fmt.Errorf("instructions differ: parallel %d, serial %d", par.Instret, ser.Instret)
	}
	if !reflect.DeepEqual(par.State, ser.State) {
		return fmt.Errorf("final architectural state differs")
	}
	if !reflect.DeepEqual(par.Stalls, ser.Stalls) {
		return fmt.Errorf("stall profiles differ")
	}
	return nil
}

func abs64(x int64) float64 {
	if x < 0 {
		return float64(-x)
	}
	return float64(x)
}
