package cpn

import (
	"fmt"
	"sort"
	"strings"

	"rcpn/internal/core"
)

// This file provides the formal analyses the paper motivates converting
// RCPN to CPN for (§3, §5: "formal methods also can be used for analyzing
// the models"): reachability-graph construction over color-abstracted
// markings, boundedness checking, deadlock detection and token-conservation
// invariants.
//
// The analyses abstract token data away (markings count tokens per color
// per place), which makes the state space finite for capacity-bounded
// pipeline models: exactly the structural questions — can a stage
// overflow, can the pipeline wedge, are resources conserved — one asks of
// a processor model before trusting its simulator.

// Marking is a color-abstracted net state: token counts per (place, color).
type Marking string

// markingOf serializes the current token distribution (sorted, canonical).
func (n *Net) markingOf() Marking {
	var b strings.Builder
	for _, p := range n.places {
		counts := map[Color]int{}
		for _, t := range p.tokens {
			counts[t.Color]++
		}
		colors := make([]int, 0, len(counts))
		for c := range counts {
			colors = append(colors, int(c))
		}
		sort.Ints(colors)
		fmt.Fprintf(&b, "%d[", p.id)
		for _, c := range colors {
			fmt.Fprintf(&b, "%d:%d,", c, counts[Color(c)])
		}
		b.WriteString("]")
	}
	return Marking(b.String())
}

// snapshot and restore support the explicit state-space search.
type snapshot [][]Token

func (n *Net) snapshot() snapshot {
	s := make(snapshot, len(n.places))
	for i, p := range n.places {
		s[i] = append([]Token(nil), p.tokens...)
	}
	return s
}

func (n *Net) restore(s snapshot) {
	for i, p := range n.places {
		p.tokens = append(p.tokens[:0], s[i]...)
	}
}

// Analysis is the result of exploring a net's reachability graph.
type Analysis struct {
	// States is the number of distinct markings reached.
	States int
	// Truncated reports that exploration hit the state limit; the other
	// fields are then lower bounds / best-effort.
	Truncated bool
	// Bound is the largest token count observed in any single place.
	Bound int
	// BoundPerPlace maps place names to their observed maximum occupancy.
	BoundPerPlace map[string]int
	// Deadlocks lists markings with no enabled transition (up to 8).
	Deadlocks []Marking
}

// Explore builds the reachability graph by interleaving semantics (firing
// one transition at a time), up to maxStates distinct markings. Timed
// availability is ignored during analysis (untimed CPN semantics), which
// over-approximates the timed behaviours: safety results (boundedness,
// conservation) carry over to the timed net.
func (n *Net) Explore(maxStates int) *Analysis {
	if maxStates <= 0 {
		maxStates = 1 << 16
	}
	res := &Analysis{BoundPerPlace: map[string]int{}}
	seen := map[Marking]bool{}
	var frontier []snapshot
	frontier = append(frontier, n.snapshot())
	seen[n.markingOf()] = true

	observe := func() {
		for _, p := range n.places {
			if len(p.tokens) > res.Bound {
				res.Bound = len(p.tokens)
			}
			if len(p.tokens) > res.BoundPerPlace[p.Name] {
				res.BoundPerPlace[p.Name] = len(p.tokens)
			}
		}
	}
	observe()

	for len(frontier) > 0 {
		if len(seen) > maxStates {
			res.Truncated = true
			break
		}
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]

		anyEnabled := false
		for _, t := range n.transitions {
			n.restore(cur)
			// Untimed: make every token immediately available.
			for _, p := range n.places {
				for i := range p.tokens {
					p.tokens[i].availableAt = 0
				}
			}
			idx, binding := n.bind(t, 0)
			if idx == nil {
				continue
			}
			anyEnabled = true
			n.fire(t, idx, binding, 0)
			mk := n.markingOf()
			if !seen[mk] {
				seen[mk] = true
				observe()
				frontier = append(frontier, n.snapshot())
			}
		}
		if !anyEnabled {
			n.restore(cur)
			if len(res.Deadlocks) < 8 {
				res.Deadlocks = append(res.Deadlocks, n.markingOf())
			}
		}
	}
	res.States = len(seen)
	return res
}

// CheckInvariant explores the reachability graph (untimed, data-abstracted)
// and evaluates pred in every reachable marking, returning pred's first
// error. Use it for place invariants; pred must be read-only.
func (n *Net) CheckInvariant(pred func() error, maxStates int) error {
	if maxStates <= 0 {
		maxStates = 1 << 14
	}
	if err := pred(); err != nil {
		return err
	}
	seen := map[Marking]bool{}
	frontier := []snapshot{n.snapshot()}
	seen[n.markingOf()] = true
	for len(frontier) > 0 && len(seen) <= maxStates {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, t := range n.transitions {
			n.restore(cur)
			for _, p := range n.places {
				for i := range p.tokens {
					p.tokens[i].availableAt = 0
				}
			}
			idx, binding := n.bind(t, 0)
			if idx == nil {
				continue
			}
			n.fire(t, idx, binding, 0)
			if err := pred(); err != nil {
				return fmt.Errorf("after %s: %w", t.Name, err)
			}
			mk := n.markingOf()
			if !seen[mk] {
				seen[mk] = true
				frontier = append(frontier, n.snapshot())
			}
		}
	}
	return nil
}

// CheckStageInvariant verifies, across the reachable markings of a net
// produced by Convert, the structural place invariant the conversion must
// preserve: for every bounded stage, free slot tokens plus occupants
// (instruction and reservation tokens in the stage's places) equal the
// stage's capacity. This is exactly what RCPN keeps implicit and CPN makes
// a token-conservation law over the back-edge loops.
func (n *Net) CheckStageInvariant(src *core.Net, m *Mapping, maxStates int) error {
	type group struct {
		slots  *Place
		places []*Place
		cap    int
		name   string
	}
	byStage := map[*core.Stage]*group{}
	for _, p := range src.Places() {
		st := p.Stage
		if st.Unlimited() {
			continue
		}
		g := byStage[st]
		if g == nil {
			g = &group{slots: m.SlotOf[st], cap: st.Capacity, name: st.Name}
			byStage[st] = g
		}
		g.places = append(g.places, m.PlaceOf[p])
	}
	return n.CheckInvariant(func() error {
		for _, g := range byStage {
			total := g.slots.Count(SlotColor)
			for _, p := range g.places {
				for _, tok := range p.Tokens() {
					if tok.Color != SlotColor {
						total++
					}
				}
			}
			if total != g.cap {
				return fmt.Errorf("stage %s: slots+occupants = %d, capacity %d", g.name, total, g.cap)
			}
		}
		return nil
	}, maxStates)
}

// CheckConservation verifies that the total number of tokens of the given
// color is identical in every reachable marking (a place/transition
// invariant, e.g. capacity slots of a stage are never created or lost).
// It returns the conserved count, or an error naming a violating marking.
//
// Call it on a copy of the net in its initial marking; exploration mutates
// and restores the token distribution.
func (n *Net) CheckConservation(color Color, maxStates int) (int, error) {
	count := func() int {
		total := 0
		for _, p := range n.places {
			total += p.Count(color)
		}
		return total
	}
	want := count()
	if maxStates <= 0 {
		maxStates = 1 << 14
	}
	seen := map[Marking]bool{}
	frontier := []snapshot{n.snapshot()}
	seen[n.markingOf()] = true
	for len(frontier) > 0 && len(seen) <= maxStates {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, t := range n.transitions {
			n.restore(cur)
			for _, p := range n.places {
				for i := range p.tokens {
					p.tokens[i].availableAt = 0
				}
			}
			idx, binding := n.bind(t, 0)
			if idx == nil {
				continue
			}
			n.fire(t, idx, binding, 0)
			if got := count(); got != want {
				return want, fmt.Errorf("cpn: color %d not conserved: %d -> %d after %s (marking %s)",
					color, want, got, t.Name, n.markingOf())
			}
			mk := n.markingOf()
			if !seen[mk] {
				seen[mk] = true
				frontier = append(frontier, n.snapshot())
			}
		}
	}
	return want, nil
}
