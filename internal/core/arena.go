package core

// Token storage is arena-backed: instruction tokens are allocated out of
// fixed-size contiguous blocks instead of as individual heap objects, and
// every arena token carries its dense pool index. Two properties matter to
// the engine:
//
//   - Locality. Tokens that are in flight together were allocated together
//     (fetch order), so the scheduling fields the cycle loop touches sit in
//     a handful of cache lines instead of being pointer-chased across the
//     heap. The per-place ready[] mirrors (engine.go) extend the same idea
//     to the place scan itself.
//   - Stability. Blocks are never moved or grown in place, so *Token
//     pointers stay valid for the arena's lifetime — the model-facing API
//     (guards, actions, payload access) is unchanged.
//
// Reset reclaims every slot at once between jobs: the blocks stay allocated
// and the next job fills them from the start, so a long-lived worker
// process performs no steady-state token allocation across jobs, not just
// within one.

// arenaBlockShift sizes arena blocks at 1<<arenaBlockShift tokens. 256
// tokens ≈ 20KB per block: larger than any modeled pipeline's in-flight
// window, small enough that idle blocks do not bloat a worker.
const arenaBlockShift = 8

const (
	arenaBlockSize = 1 << arenaBlockShift
	arenaBlockMask = arenaBlockSize - 1
)

// TokenArena is a block allocator of instruction tokens. The zero value is
// ready to use. It is not safe for concurrent use; every simulator owns its
// own arena (as it owns its own net).
type TokenArena struct {
	blocks [][]Token
	free   []int32 // recycled slot indices, LIFO
	next   int32   // high-water mark of ever-allocated slots
}

// Get returns a token of the given class and payload: a recycled slot when
// one is free, otherwise the next slot of the current block (allocating a
// new block only when the arena is entirely live).
func (a *TokenArena) Get(class ClassID, data any) *Token {
	if k := len(a.free); k > 0 {
		idx := a.free[k-1]
		a.free = a.free[:k-1]
		t := a.at(idx)
		t.Recycle(class, data)
		return t
	}
	if int(a.next)>>arenaBlockShift == len(a.blocks) {
		a.blocks = append(a.blocks, make([]Token, arenaBlockSize))
	}
	idx := a.next
	a.next++
	t := a.at(idx)
	t.Recycle(class, data)
	t.idx = idx
	return t
}

// Put recycles a token into the arena's free list. The caller must no
// longer reference it; the payload is cleared so pooled tokens do not pin
// data. Returning the same token twice would corrupt the free list (the
// slot would be handed out twice); Put detects it through the token's
// pooled flag — in race/debug builds it panics naming the bug, in release
// builds the duplicate is dropped and the free list stays intact.
func (a *TokenArena) Put(t *Token) {
	if t.pooled {
		if poolDebug {
			panic("core: TokenArena.Put called twice for the same token")
		}
		return
	}
	if t.idx < 0 {
		panic("core: TokenArena.Put of a token the arena did not allocate")
	}
	t.Data = nil
	t.pooled = true
	a.free = append(a.free, t.idx)
}

// Reset reclaims every slot at once — the between-jobs bulk free. Blocks
// are retained, so the next job allocates nothing. The caller must
// guarantee no token from this arena is still held by a net.
func (a *TokenArena) Reset() {
	a.free = a.free[:0]
	a.next = 0
}

// Live returns the number of slots currently handed out (observability for
// tests).
func (a *TokenArena) Live() int { return int(a.next) - len(a.free) }

// Cap returns the number of slots the arena has ever backed with memory.
func (a *TokenArena) Cap() int { return len(a.blocks) * arenaBlockSize }

// at returns the token at a dense slot index.
func (a *TokenArena) at(idx int32) *Token {
	return &a.blocks[idx>>arenaBlockShift][idx&arenaBlockMask]
}

// PoolIndex returns the token's dense arena slot index, or -1 for tokens
// created outside an arena (NewToken).
func (t *Token) PoolIndex() int32 { return t.idx }
