// Package reg implements the paper's three-level register structure
// (Figure 3) — the explicit lock/unlock (semaphore) mechanism RCPN uses for
// data hazards instead of tokens:
//
//   - File: the actual storage for data plus, per storage cell, the pointers
//     to the instructions (RegRefs) that will write it.
//   - Register: an index into a File's storage; multiple Registers may point
//     at the same cell to model overlapping registers (register banks,
//     windows).
//   - Ref (the paper's RegRef): a per-instruction reference to a Register
//     with an internal temporary value — effectively a rename register per
//     instruction instance. Instructions compute on Ref internals and talk
//     to architected state only through the fixed interface:
//     CanRead/Read, CanReadIn/ReadIn (bypass via "writer is in state s"),
//     CanWrite/ReserveWrite/Writeback.
//
// Const provides the same interface for immediate operands so operation
// classes can treat register and constant symbols uniformly.
package reg

import "fmt"

// StateQuerier answers "is the instruction holding this RegRef currently in
// pipeline state s?" — the hook the CanReadIn/ReadIn bypass interface needs.
// In the RCPN simulators the querier is the instruction token; states are
// place IDs. The package deliberately depends only on this tiny interface.
type StateQuerier interface {
	InState(state int) bool
}

// Operand is the fixed interface of the paper's RegRef, shared by Ref and
// Const. Guard conditions use the Can* predicates; transition bodies use the
// corresponding actions, always in matched pairs (§3.1).
type Operand interface {
	// CanRead reports whether the architected register is ready for reading
	// (no other instruction has reserved it for writing).
	CanRead() bool
	// CanReadIn reports whether the most recent pending writer's instruction
	// is in pipeline state s with its result computed — i.e. whether the
	// value can be picked up from a feedback/bypass path right now.
	CanReadIn(state int) bool
	// Read copies the architected register value into the internal storage.
	Read()
	// ReadIn copies the pending writer's internal value (the bypass network)
	// into the internal storage instead of reading the register.
	ReadIn(state int)
	// Peek purely returns the value Read/ReadIn would deliver given the
	// allowed bypass states, and whether any source is currently readable.
	// For use in guards, which must not mutate state.
	Peek(bypass ...int) (uint32, bool)
	// CanWrite reports whether the register can be reserved for writing
	// (write-after-write and write-after-read hazards clear).
	CanWrite() bool
	// ReserveWrite records this reference (and thus its instruction) as a
	// pending writer of the register, blocking subsequent readers.
	ReserveWrite()
	// Writeback commits the internal value to the architected register and
	// releases this reference's writer reservation.
	Writeback()
	// Value returns the internal (temporary) storage.
	Value() uint32
	// SetValue sets the internal storage (the computation result) and marks
	// the value as available to bypass readers.
	SetValue(v uint32)
}

// File is the actual storage: data values and writer bookkeeping per cell.
// Each cell tracks the ordered list of pending writers (oldest first); the
// newest defines the value later readers must see.
type File struct {
	name    string
	vals    []uint32
	writers [][]*Ref
	regs    []*Register

	// Reservation-order generation stamps: a Writeback only lands if no
	// later-reserved writer already committed the cell, which keeps the
	// architected value correct under out-of-order completion (XScale).
	genCtr []uint64
	wbGen  []uint64
}

// NewFile creates a register file with n storage cells.
func NewFile(name string, n int) *File {
	return &File{
		name:    name,
		vals:    make([]uint32, n),
		writers: make([][]*Ref, n),
		genCtr:  make([]uint64, n),
		wbGen:   make([]uint64, n),
	}
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the number of storage cells.
func (f *File) Size() int { return len(f.vals) }

// Raw returns the architected value of cell i, bypassing hazard bookkeeping
// (for result checking and debugging, not for modeled instructions).
func (f *File) Raw(i int) uint32 { return f.vals[i] }

// SetRaw sets the architected value of cell i directly (initialization).
func (f *File) SetRaw(i int, v uint32) { f.vals[i] = v }

// PendingWriter returns the newest Ref reserved to write cell i, or nil.
func (f *File) PendingWriter(i int) *Ref {
	w := f.writers[i]
	if len(w) == 0 {
		return nil
	}
	return w[len(w)-1]
}

// PendingWriters returns how many writers are outstanding on cell i.
func (f *File) PendingWriters(i int) int { return len(f.writers[i]) }

// Values returns a copy of every cell's architected value (checkpoint
// capture). Pending-writer bookkeeping is deliberately not captured: the
// paper's drained-pipeline boundary is exactly the point where no writer
// reservations exist, so architected values are the whole state.
func (f *File) Values() []uint32 { return append([]uint32(nil), f.vals...) }

// SetValues overwrites every cell's architected value and drops all hazard
// bookkeeping, including the out-of-order writeback generation stamps
// (checkpoint restore at a drained boundary).
func (f *File) SetValues(vals []uint32) error {
	if len(vals) != len(f.vals) {
		return fmt.Errorf("reg: %s: restoring %d values into %d cells", f.name, len(vals), len(f.vals))
	}
	copy(f.vals, vals)
	f.ClearHazards()
	for i := range f.genCtr {
		f.genCtr[i] = 0
		f.wbGen[i] = 0
	}
	return nil
}

// ClearHazards drops all writer reservations (whole-pipeline reset support).
func (f *File) ClearHazards() {
	for i := range f.writers {
		f.writers[i] = f.writers[i][:0]
	}
}

// Register registers (and returns) a named architectural register backed by
// cell. Multiple registers may share a cell to model overlap.
func (f *File) Register(name string, cell int) *Register {
	if cell < 0 || cell >= len(f.vals) {
		panic(fmt.Sprintf("reg: %s.%s: cell %d out of range [0,%d)", f.name, name, cell, len(f.vals)))
	}
	r := &Register{file: f, cell: cell, name: name}
	f.regs = append(f.regs, r)
	return r
}

// Register is an architectural register: a name plus a pointer into a File's
// storage.
type Register struct {
	file *File
	cell int
	name string
}

// Name returns the register name.
func (r *Register) Name() string { return r.name }

// Cell returns the storage cell index (shared cells model overlap).
func (r *Register) Cell() int { return r.cell }

// File returns the owning register file.
func (r *Register) File() *File { return r.file }

// Value returns the current architected value.
func (r *Register) Value() uint32 { return r.file.vals[r.cell] }

// Set sets the architected value directly (initialization/debug).
func (r *Register) Set(v uint32) { r.file.vals[r.cell] = v }

// Ref is the paper's RegRef: a per-instruction handle on a Register with
// internal temporary storage. The zero Ref is not usable; obtain Refs with
// NewRef or Ref.Retarget.
type Ref struct {
	reg   *Register
	val   uint32
	ready bool   // val holds a computed result (bypassable)
	gen   uint64 // reservation-order stamp (see File.genCtr)
	owner StateQuerier
}

// NewRef creates a reference to r owned by the instruction represented by
// owner (may be nil when bypass queries are not used).
func NewRef(r *Register, owner StateQuerier) *Ref {
	return &Ref{reg: r, owner: owner}
}

// Retarget repoints a pooled Ref at a (possibly different) register and
// owner, clearing the internal value. This supports the simulator's token
// cache: decoded instructions and their Refs are recycled between dynamic
// instances (§5 "the tokens are cached for later reuse").
func (r *Ref) Retarget(reg *Register, owner StateQuerier) {
	r.reg = reg
	r.owner = owner
	r.val = 0
	r.ready = false
}

// Register returns the referenced architectural register.
func (r *Ref) Register() *Register { return r.reg }

func (r *Ref) cell() (*File, int) { return r.reg.file, r.reg.cell }

// lastWriter returns the newest pending writer of the cell, or nil.
func (r *Ref) lastWriter() *Ref {
	f, c := r.cell()
	w := f.writers[c]
	if len(w) == 0 {
		return nil
	}
	return w[len(w)-1]
}

// CanRead implements Operand: readable when no writer is pending, or the
// only pending writer is this reference itself.
func (r *Ref) CanRead() bool {
	f, c := r.cell()
	w := f.writers[c]
	return len(w) == 0 || (len(w) == 1 && w[0] == r)
}

// CanReadIn implements Operand.
func (r *Ref) CanReadIn(state int) bool {
	w := r.lastWriter()
	return w != nil && w != r && w.ready && w.owner != nil && w.owner.InState(state)
}

// Read implements Operand.
func (r *Ref) Read() {
	f, c := r.cell()
	r.val = f.vals[c]
	r.ready = true
}

// ReadIn implements Operand. It must only be called when CanReadIn(state)
// held in the matching guard; calling it without a pending writer panics,
// surfacing the model bug (mismatched guard/action pair).
func (r *Ref) ReadIn(state int) {
	w := r.lastWriter()
	if w == nil || w == r {
		f, _ := r.cell()
		panic(fmt.Sprintf("reg: ReadIn(%d) on %s.%s with no pending writer (guard/action mismatch)",
			state, f.name, r.reg.name))
	}
	r.val = w.val
	r.ready = true
}

// Peek implements Operand.
func (r *Ref) Peek(bypass ...int) (uint32, bool) {
	if r.CanRead() {
		f, c := r.cell()
		return f.vals[c], true
	}
	for _, s := range bypass {
		if r.CanReadIn(s) {
			return r.lastWriter().val, true
		}
	}
	return 0, false
}

// CanWrite implements Operand: strict WAW — at most this reference itself
// may already be reserved. In-order flag pipelines may skip this check and
// stack reservations; see ReserveWrite.
func (r *Ref) CanWrite() bool {
	f, c := r.cell()
	w := f.writers[c]
	return len(w) == 0 || (len(w) == 1 && w[0] == r)
}

// ReserveWrite implements Operand: push this reference as the newest pending
// writer (idempotent per reference).
func (r *Ref) ReserveWrite() {
	f, c := r.cell()
	for _, w := range f.writers[c] {
		if w == r {
			return
		}
	}
	f.writers[c] = append(f.writers[c], r)
	f.genCtr[c]++
	r.gen = f.genCtr[c]
	r.ready = false
}

// Writeback implements Operand. The value lands only if no later-reserved
// writer already committed the cell — an older instruction completing after
// a younger one (out-of-order completion) must not clobber the younger's
// architected result.
func (r *Ref) Writeback() {
	f, c := r.cell()
	if r.gen >= f.wbGen[c] {
		f.vals[c] = r.val
		f.wbGen[c] = r.gen
	}
	r.removeReservation()
}

// Release drops this reference's writer reservation without committing a
// value (squashed/flushed instructions).
func (r *Ref) Release() { r.removeReservation() }

func (r *Ref) removeReservation() {
	f, c := r.cell()
	w := f.writers[c]
	for i, x := range w {
		if x == r {
			copy(w[i:], w[i+1:])
			f.writers[c] = w[:len(w)-1]
			return
		}
	}
}

// Value implements Operand.
func (r *Ref) Value() uint32 { return r.val }

// Ready reports whether the internal value has been computed (by SetValue,
// Read or ReadIn). Reservation-station style models use it for tag-based
// waiting: a consumer that captured this Ref as its producer tag at dispatch
// polls Ready until the value exists (see examples/tomasulo).
func (r *Ref) Ready() bool { return r.ready }

// SetValue implements Operand.
func (r *Ref) SetValue(v uint32) {
	r.val = v
	r.ready = true
}

// Const is an immediate operand with the RegRef interface: its CanRead is
// always true, its Read/Writeback do nothing to architected state, so the
// same operation-class code handles register and constant symbols (§3.1).
type Const struct {
	val uint32
}

// NewConst returns a constant operand.
func NewConst(v uint32) *Const { return &Const{val: v} }

// Reset re-initializes a pooled Const to a new value.
func (c *Const) Reset(v uint32) { c.val = v }

// CanRead implements Operand; constants are always readable.
func (c *Const) CanRead() bool { return true }

// CanReadIn implements Operand; constants have no pending writers.
func (c *Const) CanReadIn(state int) bool { return false }

// Read implements Operand; the value is already internal.
func (c *Const) Read() {}

// ReadIn implements Operand; no-op for constants.
func (c *Const) ReadIn(state int) {}

// Peek implements Operand.
func (c *Const) Peek(bypass ...int) (uint32, bool) { return c.val, true }

// CanWrite implements Operand; writing a constant is a silent no-op target.
func (c *Const) CanWrite() bool { return true }

// ReserveWrite implements Operand; no-op.
func (c *Const) ReserveWrite() {}

// Writeback implements Operand; no-op.
func (c *Const) Writeback() {}

// Value implements Operand.
func (c *Const) Value() uint32 { return c.val }

// SetValue implements Operand; the internal value changes but nothing
// persists (matching the paper's "proper implementation" for Const).
func (c *Const) SetValue(v uint32) { c.val = v }

var (
	_ Operand = (*Ref)(nil)
	_ Operand = (*Const)(nil)
)
