package machine

import (
	"fmt"

	"rcpn/internal/ckpt"
	"rcpn/internal/core"
)

// Checkpoint support for the RCPN models. A cycle-accurate pipeline can only
// be snapshotted at a drained boundary — no tokens in flight — because that
// is the point where the architected state (registers, flags, memory, PC)
// fully determines all future behavior; in-flight tokens hold partial
// results, reservations and data-dependent delays that have no stable
// serialized form. RunN produces such boundaries on demand: it runs until a
// target retirement count, then holds the fetch source and lets the pipeline
// empty. Any in-flight control transfer resolves during the drain (redirects
// update the fetch PC even with fetch held), so the drained PC is always the
// next architectural instruction.

// Drained reports whether no instruction is in flight: every place empty
// (including two-list staging buffers) and no serializing instruction
// holding the front end. Functional machines have no pipeline and are always
// drained.
func (m *Machine) Drained() bool {
	if m.functional || m.Net == nil {
		return true
	}
	for _, p := range m.Net.Places() {
		live := false
		p.ForEachToken(func(*core.Token) { live = true })
		if live {
			return false
		}
	}
	return m.fetchHold == nil
}

// RunN simulates until at least n more instructions retire (or the program
// exits), then drains the pipeline so the machine sits at a checkpointable
// architectural boundary. The boundary lands at the first drained point at
// or after the target — a few instructions past it, since work already in
// flight when the target retires completes normally. maxCycles bounds the
// whole operation (0 = 1<<40).
func (m *Machine) RunN(n uint64, maxCycles int64) error {
	if m.functional {
		return fmt.Errorf("%s: RunN needs a pipeline; use RunFunctional", m.Name)
	}
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	target := m.Instret + n
	step := func() error {
		if m.Net.CycleCount() >= maxCycles {
			return fmt.Errorf("%s: cycle limit %d exceeded at pc=%#08x", m.Name, maxCycles, m.pc)
		}
		m.Net.Step()
		if m.tracer != nil {
			m.tracer.snap()
		}
		return m.Err
	}
	for !m.Exited && m.Instret < target {
		if err := step(); err != nil {
			return err
		}
	}
	m.holdFetch = true
	defer func() { m.holdFetch = false }()
	for !m.Drained() {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil simulates until at least target total instructions have retired,
// the program exits, or the cycle count reaches cycleLimit (0 = 1<<40) —
// whichever comes first. Unlike RunN it does not drain and reaching the
// cycle limit is a clean stop, not an error, so a driver can interleave
// limit-sized bursts with cancellation checks; because the limit check sits
// strictly between cycles, where the bursts end cannot change the simulated
// outcome, and the first state with Instret >= target is independent of the
// burst schedule.
func (m *Machine) RunUntil(target uint64, cycleLimit int64) error {
	if m.functional {
		return fmt.Errorf("%s: RunUntil needs a pipeline; use RunFunctional", m.Name)
	}
	if cycleLimit <= 0 {
		cycleLimit = 1 << 40
	}
	for !m.halted() && m.Instret < target && m.Net.CycleCount() < cycleLimit {
		m.Net.Step()
		if m.tracer != nil {
			m.tracer.snap()
		}
		if m.Err != nil {
			return m.Err
		}
	}
	return nil
}

// Drain holds the front end and runs the pipeline empty, leaving the
// machine at a checkpointable architectural boundary (the same drain RunN
// performs after its retirement target). maxCycles bounds the drain
// (0 = 1<<40).
func (m *Machine) Drain(maxCycles int64) error {
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	m.holdFetch = true
	defer func() { m.holdFetch = false }()
	for !m.Drained() {
		if m.Net.CycleCount() >= maxCycles {
			return fmt.Errorf("%s: cycle limit %d exceeded draining at pc=%#08x", m.Name, maxCycles, m.pc)
		}
		m.Net.Step()
		if m.tracer != nil {
			m.tracer.snap()
		}
		if m.Err != nil {
			return m.Err
		}
	}
	return nil
}

// Checkpoint captures the architected state plus the machine's warm
// microarchitectural state (cache residency, branch-predictor history). It
// fails unless the pipeline is drained.
func (m *Machine) Checkpoint() (*ckpt.Checkpoint, error) {
	if m.Err != nil {
		return nil, m.Err
	}
	if !m.Drained() {
		return nil, fmt.Errorf("%s: checkpoint requires a drained pipeline (use RunN)", m.Name)
	}
	ck := &ckpt.Checkpoint{
		Instret: m.Instret,
		Exited:  m.Exited,
		Exit:    m.ExitCode,
		Output:  append([]uint32(nil), m.Output...),
		Text:    append([]byte(nil), m.Text...),
		Mem:     ckpt.CaptureMem(m.Mem),
		ICache:  ckpt.CaptureCache(m.ICache),
		DCache:  ckpt.CaptureCache(m.DCache),
		Pred:    ckpt.CapturePred(m.Pred),
	}
	for i := 0; i < 15; i++ {
		ck.R[i] = m.regs[i].Value()
	}
	ck.R[15] = m.pc
	ck.Flags = m.psrReg.Value() & 0xf
	return ck, nil
}

// Restore overwrites the machine's state with the checkpoint. The machine
// must be drained (a freshly built one is). Microarchitectural structures
// are reset first and then warmed from the checkpoint when it carries state,
// so nothing stale survives; the decoded-instruction pools are dropped since
// the restored image may differ from the one they were decoded from.
func (m *Machine) Restore(ck *ckpt.Checkpoint) error {
	if !m.Drained() {
		return fmt.Errorf("%s: restore requires a drained pipeline", m.Name)
	}
	ckpt.RestoreMem(m.Mem, ck.Mem)
	vals := make([]uint32, m.GPR.Size())
	copy(vals, ck.R[:15])
	if err := m.GPR.SetValues(vals); err != nil {
		return err
	}
	if err := m.PSRF.SetValues([]uint32{ck.Flags & 0xf}); err != nil {
		return err
	}
	m.pc = ck.PC()
	m.Instret = ck.Instret
	m.Output = append(m.Output[:0], ck.Output...)
	m.Text = append(m.Text[:0], ck.Text...)
	m.Exited = ck.Exited
	m.ExitCode = ck.Exit
	m.Err = nil
	m.fetchHold = nil
	if err := ckpt.RestoreCache(m.ICache, ck.ICache); err != nil {
		return err
	}
	if err := ckpt.RestoreCache(m.DCache, ck.DCache); err != nil {
		return err
	}
	if err := ckpt.RestorePred(m.Pred, ck.Pred); err != nil {
		return err
	}
	for i := range m.pool {
		m.pool[i] = nil
	}
	clear(m.poolExtra)
	return nil
}
