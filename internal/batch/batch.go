// Package batch runs a matrix of simulation jobs — (simulator, workload,
// config, interval) cells — on a bounded worker pool and aggregates the
// results. It exists because the generated simulators are embarrassingly
// parallel at the job level: a design-space sweep or a sampled-simulation
// study is hundreds of independent runs, and a cycle-accurate model saturates
// one core, so the natural unit of parallelism is the whole job.
//
// The pool claims jobs with an atomic counter, so with Workers == 1 execution
// order is exactly submission order and the run is byte-identical to a serial
// loop. With more workers, jobs complete in nondeterministic order but results
// are stored by job index, so every aggregate view (stats.Set, JSON report)
// is independent of scheduling. Each job runs under a panic handler and an
// optional deadline; one wedged or crashing configuration cannot take down a
// sweep.
//
// Cancellation is cooperative: every job body receives a context that
// carries the per-job deadline and the sweep-wide Options.Context. Job
// bodies that drive their simulator through Drive (or otherwise poll the
// context) stop at the next chunk boundary when the deadline passes or the
// sweep is canceled; bodies that ignore the context are abandoned after a
// grace window, as before.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rcpn/internal/obsv"
	"rcpn/internal/stats"
)

// Metrics is what a job measures. Extra carries named scalar metrics beyond
// the core pair (hit ratios, CPI error, ...). Stalls, when the job enabled
// stall attribution on its simulator, is the per-stage profile snapshot;
// it serializes into the report under "stalls".
type Metrics struct {
	Cycles  int64
	Instret uint64
	Extra   map[string]float64
	Stalls  *obsv.StallSnapshot
}

// CPI returns cycles per retired instruction.
func (m Metrics) CPI() float64 {
	if m.Instret == 0 {
		return 0
	}
	return float64(m.Cycles) / float64(m.Instret)
}

// Job is one cell of the matrix. Run is the job body: typically it builds a
// simulator (from a program or a checkpoint), runs it, and returns the
// measurements. Run must be self-contained — it is called exactly once, on an
// arbitrary worker goroutine, and must not share mutable state with other
// jobs. The context carries the job's deadline and the sweep's cancellation;
// a body that wants timeouts to actually stop the simulator (rather than
// leak the goroutine) should check it at a coarse granularity, e.g. by
// running the simulator through Drive.
type Job struct {
	Simulator string
	Workload  string
	Config    string // configuration label ("" when there is only one)
	Interval  string // sampling-interval label ("" for full runs)
	// Timeout overrides Options.Timeout for this job (0 = inherit).
	Timeout time.Duration
	Run     func(ctx context.Context) (Metrics, error)
	// Partial, when set, salvages measurements after Run panics: it is
	// called on the job goroutine once the panic has been recovered (the
	// body is no longer executing) and its result becomes the job's
	// metrics. Bodies typically snapshot progress — including a partial
	// stall profile — at chunk boundaries and return the last snapshot
	// here, so even a crashed job reports everything up to its last
	// completed chunk. A panic inside Partial is swallowed; the job then
	// reports zero metrics as before.
	Partial func() Metrics
}

// label renders the cell coordinates for error messages.
func (j *Job) label() string {
	s := j.Simulator + "/" + j.Workload
	if j.Config != "" {
		s += "/" + j.Config
	}
	if j.Interval != "" {
		s += "@" + j.Interval
	}
	return s
}

// ErrTransient marks a job-body error as retryable infrastructure failure
// rather than a property of the job itself: wrap it (fmt.Errorf with %w)
// when the failure came from a lost worker, a dropped connection or any
// other condition a re-run on healthy infrastructure would not reproduce.
// runOne surfaces it as Result.Transient.
var ErrTransient = errors.New("batch: transient failure")

// Result is one finished job. Err is a string (not error) so the report
// serializes; empty means success.
type Result struct {
	Simulator string
	Workload  string
	Config    string
	Interval  string
	Metrics
	Wall     time.Duration
	Err      string
	Panicked bool
	TimedOut bool
	// Canceled means the sweep's context was canceled before or while the
	// job ran (drain path), as opposed to the job's own deadline expiring.
	Canceled bool
	// Transient means the body failed with ErrTransient in its chain: the
	// job did not fail, its infrastructure did, and a retry is warranted.
	// Never serialized into reports — it describes the attempt, not the
	// result.
	Transient bool
}

// Options configures a pool run.
type Options struct {
	// Workers bounds concurrency; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Timeout is the default per-job deadline; 0 means no deadline.
	Timeout time.Duration
	// Context, when non-nil, cancels the whole sweep: jobs not yet started
	// complete immediately with Canceled set, and running jobs see the
	// cancellation through their context. nil means context.Background().
	Context context.Context
	// Progress, when set, is called after each job completes with the number
	// done so far and the total. Calls are serialized but arrive in
	// completion order, not submission order.
	Progress func(done, total int, r Result)
}

func (opt *Options) parent() context.Context {
	if opt.Context != nil {
		return opt.Context
	}
	return context.Background()
}

// Report is the aggregated outcome of a Run: one Result per job, in
// submission order regardless of completion order.
type Report struct {
	Results []Result
	// Wall is the whole pool run, end to end.
	Wall time.Duration
	// Workers is the concurrency the run actually used.
	Workers int
}

// Run executes the jobs on a bounded worker pool and returns the report.
// It always runs every job; per-job failures are recorded, not propagated.
func Run(jobs []Job, opt Options) *Report {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	rep := &Report{Results: make([]Result, len(jobs)), Workers: workers}
	start := time.Now()
	parent := opt.parent()

	var next atomic.Int64
	var done atomic.Int64
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				r := runOne(&jobs[i], parent, opt.Timeout)
				rep.Results[i] = r
				n := int(done.Add(1))
				if opt.Progress != nil {
					progressMu.Lock()
					opt.Progress(n, len(jobs), r)
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	rep.Wall = time.Since(start)
	return rep
}

// graceFor is how long after a job's deadline runOne waits for a
// cooperative body to report back before abandoning its goroutine: long
// enough to cover a Drive chunk, short enough not to stall the sweep on a
// body that ignores its context.
func graceFor(timeout time.Duration) time.Duration {
	g := timeout
	if g < 50*time.Millisecond {
		g = 50 * time.Millisecond
	}
	if g > 2*time.Second {
		g = 2 * time.Second
	}
	return g
}

// runOne executes a single job under panic recovery, the sweep context and
// an optional deadline.
func runOne(j *Job, parent context.Context, defTimeout time.Duration) Result {
	r := Result{Simulator: j.Simulator, Workload: j.Workload,
		Config: j.Config, Interval: j.Interval}
	if err := parent.Err(); err != nil {
		// Sweep already canceled: don't start the job at all.
		r.Canceled = true
		r.Err = fmt.Sprintf("%s: %v", j.label(), err)
		return r
	}
	timeout := j.Timeout
	if timeout == 0 {
		timeout = defTimeout
	}
	start := time.Now()

	ctx, cancel := parent, context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(parent, timeout)
	}
	defer cancel()

	type outcome struct {
		m        Metrics
		err      error
		panicked bool
	}
	ch := make(chan outcome, 1)
	go func() {
		var o outcome
		defer func() {
			if p := recover(); p != nil {
				buf := make([]byte, 4096)
				buf = buf[:runtime.Stack(buf, false)]
				o.err = fmt.Errorf("panic: %v\n%s", p, buf)
				o.panicked = true
				if j.Partial != nil {
					// The body is dead; salvage what it measured up to its
					// last completed chunk.
					func() {
						defer func() { recover() }() //nolint:errcheck // salvage must not re-panic
						o.m = j.Partial()
					}()
				}
			}
			ch <- o
		}()
		o.m, o.err = j.Run(ctx)
	}()

	record := func(o outcome) {
		r.Metrics, r.Panicked = o.m, o.panicked
		if o.err != nil {
			switch {
			case errors.Is(o.err, context.DeadlineExceeded):
				r.TimedOut = true
			case errors.Is(o.err, context.Canceled):
				r.Canceled = true
			}
			if errors.Is(o.err, ErrTransient) {
				r.Transient = true
			}
			r.Err = fmt.Sprintf("%s: %v", j.label(), o.err)
		}
	}

	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case o := <-ch:
			record(o)
		case <-timer.C:
			// Deadline hit. A cooperative body stops at its next chunk
			// boundary and reports partial metrics; give it a grace window
			// before falling back to abandoning the goroutine.
			grace := time.NewTimer(graceFor(timeout))
			defer grace.Stop()
			select {
			case o := <-ch:
				record(o)
				r.TimedOut = true
			case <-grace.C:
				r.TimedOut = true
				r.Err = fmt.Sprintf("%s: timed out after %v (job ignores its context; goroutine abandoned)",
					j.label(), timeout)
			}
		}
	} else {
		record(<-ch)
	}
	r.Wall = time.Since(start)
	return r
}

// Failed returns the results that did not succeed, in submission order.
func (rep *Report) Failed() []Result {
	var out []Result
	for _, r := range rep.Results {
		if r.Err != "" {
			out = append(out, r)
		}
	}
	return out
}

// StatsSet converts the successful results into a stats.Set, so batch output
// feeds the same Figure 10/11 table renderers as the serial harness. Config
// and interval labels are folded into the simulator name when present.
func (rep *Report) StatsSet() *stats.Set {
	set := &stats.Set{}
	for _, r := range rep.Results {
		if r.Err != "" {
			continue
		}
		name := r.Simulator
		if r.Config != "" {
			name += "/" + r.Config
		}
		if r.Interval != "" {
			name += "@" + r.Interval
		}
		set.Add(stats.Run{Simulator: name, Workload: r.Workload,
			Cycles: r.Cycles, Instret: r.Instret, Wall: r.Wall})
	}
	return set
}
