package machine

import (
	"rcpn/internal/arm"
	"rcpn/internal/obsv"
)

// Runtime support for generated simulators (internal/gen). A generated
// package compiles the net structure — stages, places, transitions, the
// sorted_transitions table — into straight-line Go, but the parts of a
// Machine that are model-independent (fetch/decode with the per-PC
// decoded-instruction cache, architected registers and memory, caches,
// predictor, system calls, flush bookkeeping, checkpointing) are exactly
// reusable: a GenRuntime is a Machine with Net == nil whose pipeline lives
// in generated code. The generated package owns the latches and calls back
// in through the small surface below; instruction residency for bypass
// queries is carried on each token with core.Token.SetExternalState, so
// reg.Ref.CanReadIn works unchanged.

// NewGenRuntime builds the net-free Machine a generated simulator drives.
// It uses the same default units as machine.Generate (StrongARM caches,
// not-taken prediction) so a generated model and its interpreted twin are
// cycle-comparable under identical configs. The pipeline ablation flags
// (TwoListAll, DynamicSearch, NoActiveList) have no net to act on and are
// ignored; NoTokenCache still disables the decode cache.
func NewGenRuntime(name string, p *arm.Program, cfg Config) *Machine {
	return newMachine(name, p, cfg, defaultStrongARMUnits)
}

// GenFetch is fetchOne for generated simulators: decode (or reuse) the
// instruction at the fetch PC, consult the predictor, advance the
// speculative PC, and return the instance plus its I-cache latency. It
// returns nil while fetch is blocked (exit, serialization, drain hold).
func (m *Machine) GenFetch() (*Inst, int64) {
	tok := m.fetchOne()
	if tok == nil {
		return nil, 0
	}
	lat := tok.Delay
	tok.Delay = 0
	return tok.Data.(*Inst), lat
}

// GenRetire counts architected completion of in and recycles the instance
// into the per-PC decode cache (the retire callback of the net path).
func (m *Machine) GenRetire(in *Inst) {
	m.Instret++
	if m.fetchHold == in {
		m.fetchHold = nil
	}
	m.recycle(in)
}

// SetGenFlush installs the generated pipeline's squash hook: given a
// sequence number, remove every in-flight instruction younger than it from
// the generated latches and return the victims. flushAfter consults it in
// place of the net walk; lock release, fetch-hold clearing, recycling and
// the PC redirect stay on the machine side. The returned slice is only read
// before the next call, so the hook may reuse a scratch buffer.
func (m *Machine) SetGenFlush(f func(youngerThan uint64) []*Inst) { m.genFlush = f }

// GenHoldFetch pauses (true) or resumes (false) the front end, the drain
// primitive generated Run/Drain loops use.
func (m *Machine) GenHoldFetch(hold bool) { m.holdFetch = hold }

// FetchHeld reports whether a serializing instruction currently holds the
// front end (part of the generated simulator's Drained predicate).
func (m *Machine) FetchHeld() bool { return m.fetchHold != nil }

// InstallProfile points the machine's operand counters (bypass-served and
// register-file reads, counted in Inst.readFrom) at a profile owned by the
// generated simulator, which accounts stage slots itself.
func (m *Machine) InstallProfile(p *obsv.StallProfile) { m.prof = p }

// Annulled reports whether the instruction's condition evaluated false at
// issue; generated code uses it to skip data-dependent delay computation
// the way the transition actions do.
func (in *Inst) Annulled() bool { return in.annulled }

// SetState records the generated-pipeline state the instruction currently
// occupies (-1 = none), feeding the same Token.InState feedback queries the
// net's place residency feeds on interpreted models.
func (in *Inst) SetState(state int) { in.Tok.SetExternalState(state) }
