package rpc

import (
	"encoding/binary"
	"fmt"
)

// Message kinds: the first payload byte of every frame.
const (
	kindHello byte = iota + 1
	kindSubmit
	kindProgress
	kindResult
	kindError
	kindPing
	kindPong
)

// Msg is one protocol message. Concrete types below; Encode/DecodeMsg
// convert to and from frame payloads.
type Msg interface {
	kind() byte
	enc(e *enc)
}

// Hello opens a connection, both directions: the worker announces itself,
// the coordinator acknowledges. A version mismatch is fatal — there is no
// negotiation, both sides are built from the same tree.
type Hello struct {
	Version uint32
	// Node names the worker for logs and the ring ("" in the
	// coordinator's reply).
	Node string
	// Slots is the worker's concurrent job capacity (0 in the reply).
	Slots uint32
}

func (Hello) kind() byte { return kindHello }
func (m Hello) enc(e *enc) {
	e.u64(uint64(m.Version))
	e.str(m.Node)
	e.u64(uint64(m.Slots))
}

// Submit dispatches one job: the content address and the canonical spec
// bytes it addresses. Everything a worker needs is in the spec — no
// worker-side policy can change the result bytes.
type Submit struct {
	ID   string
	Spec []byte
}

func (Submit) kind() byte { return kindSubmit }
func (m Submit) enc(e *enc) {
	e.str(m.ID)
	e.bytes(m.Spec)
}

// Progress reports a running job's live counters. Advisory: it feeds SSE
// streams and refreshes the dispatch idle deadline, and never enters a
// result.
type Progress struct {
	ID      string
	Cycles  int64
	Instret uint64
}

func (Progress) kind() byte { return kindProgress }
func (m Progress) enc(e *enc) {
	e.str(m.ID)
	e.i64(m.Cycles)
	e.u64(m.Instret)
}

// Result delivers a terminal outcome: the deterministic one-job
// rcpn-batch/v1 payload (byte-identical to what a local run of the same
// spec would produce), the final counters, and — for traced jobs — the
// rendered Chrome trace JSON.
type Result struct {
	ID string
	// Failed marks a deterministic, permanent job failure (the payload
	// still carries the diagnostic report).
	Failed  bool
	Cycles  int64
	Instret uint64
	Payload []byte
	Trace   []byte
}

func (Result) kind() byte { return kindResult }
func (m Result) enc(e *enc) {
	e.str(m.ID)
	e.bool(m.Failed)
	e.i64(m.Cycles)
	e.u64(m.Instret)
	e.bytes(m.Payload)
	e.bytes(m.Trace)
}

// JobError reports that an attempt failed without a result. Transient
// failures (worker overload, panic, timeout) are the coordinator's to
// retry — the worker never retries on its own, keeping retry policy out of
// the result path entirely.
type JobError struct {
	ID        string
	Msg       string
	Transient bool
}

func (JobError) kind() byte { return kindError }
func (m JobError) enc(e *enc) {
	e.str(m.ID)
	e.str(m.Msg)
	e.bool(m.Transient)
}

// Ping / Pong are the liveness heartbeat. Workers ping on an interval;
// the coordinator pongs. Either side treats a quiet connection as dead
// once its read deadline expires.
type Ping struct{ Seq uint64 }

func (Ping) kind() byte   { return kindPing }
func (m Ping) enc(e *enc) { e.u64(m.Seq) }

type Pong struct{ Seq uint64 }

func (Pong) kind() byte   { return kindPong }
func (m Pong) enc(e *enc) { e.u64(m.Seq) }

// Encode renders a message as a frame payload.
func Encode(m Msg) []byte {
	e := &enc{b: make([]byte, 0, 64)}
	e.b = append(e.b, m.kind())
	m.enc(e)
	return e.b
}

// DecodeMsg parses a frame payload back into its message. Unknown kinds
// and malformed fields are errors — the connection is poisoned, exactly as
// for a CRC failure.
func DecodeMsg(payload []byte) (Msg, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("rpc: empty message")
	}
	d := &dec{b: payload[1:]}
	var m Msg
	switch payload[0] {
	case kindHello:
		m = Hello{Version: uint32(d.u64()), Node: d.str(), Slots: uint32(d.u64())}
	case kindSubmit:
		m = Submit{ID: d.str(), Spec: d.bytes()}
	case kindProgress:
		m = Progress{ID: d.str(), Cycles: d.i64(), Instret: d.u64()}
	case kindResult:
		m = Result{ID: d.str(), Failed: d.bool(), Cycles: d.i64(),
			Instret: d.u64(), Payload: d.bytes(), Trace: d.bytes()}
	case kindError:
		m = JobError{ID: d.str(), Msg: d.str(), Transient: d.bool()}
	case kindPing:
		m = Ping{Seq: d.u64()}
	case kindPong:
		m = Pong{Seq: d.u64()}
	default:
		return nil, fmt.Errorf("rpc: unknown message kind %d", payload[0])
	}
	if d.err != nil {
		return nil, fmt.Errorf("rpc: malformed %T: %w", m, d.err)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("rpc: %T carries %d trailing bytes", m, len(d.b))
	}
	return m, nil
}

// ---- field codec (mask-and-varint house style) -----------------------------

type enc struct{ b []byte }

func (e *enc) u64(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) i64(v int64)  { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *enc) bytes(p []byte) {
	e.b = binary.AppendUvarint(e.b, uint64(len(p)))
	e.b = append(e.b, p...)
}
func (e *enc) str(s string) {
	e.b = binary.AppendUvarint(e.b, uint64(len(s)))
	e.b = append(e.b, s...)
}

type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("truncated %s field", what)
	}
	d.b = nil
}

func (d *dec) u64() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) i64() int64 {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) bool() bool {
	if len(d.b) < 1 {
		d.fail("bool")
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	if v > 1 {
		if d.err == nil {
			d.err = fmt.Errorf("bool field value %d", v)
		}
		return false
	}
	return v == 1
}

func (d *dec) bytes() []byte {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("bytes")
		return nil
	}
	if n == 0 {
		return nil
	}
	v := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return v
}

func (d *dec) str() string { return string(d.bytes()) }
