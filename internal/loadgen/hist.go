package loadgen

import "math/bits"

// Histogram is an HDR-style latency histogram: logarithmic octaves split
// into 16 linear sub-buckets, so any recorded value is represented with at
// most ~6% relative error while the whole structure is one fixed array —
// no allocation per record, deterministic quantiles, trivially mergeable.
// Values are non-negative integers (the runner records microseconds).
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	max    int64
	sum    int64
}

// histSubBits gives 1<<histSubBits linear sub-buckets per octave.
const histSubBits = 4

// histBuckets is the fixed bucket count: 960 buckets exactly cover the
// non-negative int64 range (MaxInt64 has bit length 63, so the largest
// index is 58<<4 + 31 = 959) — the clamp in histBucket is pure defense.
const histBuckets = 960

// histBucket maps a value to its bucket index: values below 32 map
// exactly, above that each octave [2^k, 2^(k+1)) splits into 16 linear
// sub-buckets. With shift = max(0, bitlen(v)-5) the mapping collapses to
// 16*shift + v>>shift.
func histBucket(v int64) int {
	if v < 0 {
		v = 0
	}
	shift := bits.Len64(uint64(v)) - (histSubBits + 1)
	if shift < 0 {
		shift = 0
	}
	i := shift<<histSubBits + int(v>>shift)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// histValue returns the representative (upper-edge) value of a bucket, the
// inverse of histBucket up to the bucket's width.
func histValue(i int) int64 {
	shift := i>>histSubBits - 1
	if shift < 1 {
		// Exact region plus the first octave: buckets are unit-width.
		return int64(i)
	}
	base := int64(i-shift<<histSubBits) << shift
	return base + 1<<shift - 1
}

// Record adds one value.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count }

// Max returns the largest recorded value (exact, not bucketed).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the exact mean of recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the value at or below which a fraction q of recorded
// values fall, up to bucket resolution. q is clamped to [0, 1]; an empty
// histogram reports 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			v := histValue(i)
			if v > h.max {
				return h.max // never report beyond the true maximum
			}
			return v
		}
	}
	return h.max
}
