package arm

import (
	"testing"
	"testing/quick"
)

func TestDecodeHalfwordForms(t *testing.T) {
	cases := []struct {
		src                string
		load, half, signed bool
	}{
		{"ldrh r1, [r2, #6]", true, true, false},
		{"strh r1, [r2], #2", false, true, false},
		{"ldrsb r1, [r2, r3]", true, false, true},
		{"ldrsh r1, [r2, #-4]!", true, true, true},
	}
	for _, c := range cases {
		ins := asmOne(t, c.src)
		if ins.Class != ClassLoadStore {
			t.Fatalf("%s: class %v", c.src, ins.Class)
		}
		if ins.Load != c.load || ins.Half != c.half || ins.SignedLoad != c.signed {
			t.Errorf("%s: load=%v half=%v signed=%v", c.src, ins.Load, ins.Half, ins.SignedLoad)
		}
	}
	// Field checks on one form.
	ins := asmOne(t, "ldrh r1, [r2, #0xf3]")
	if !ins.HasImm || ins.Imm != 0xf3 || ins.Rn != 2 || ins.Rd != 1 || !ins.PreIndex || !ins.Up {
		t.Fatalf("ldrh imm: %+v", ins)
	}
	ins = asmOne(t, "ldrsh r4, [r5, r6]")
	if ins.HasImm || ins.Rm != 6 {
		t.Fatalf("ldrsh reg: %+v", ins)
	}
}

func TestHalfwordEncodeLimits(t *testing.T) {
	if _, err := Assemble("ldrh r0, [r1, #256]\n", 0); err == nil {
		t.Error("halfword offset > 255 must be rejected")
	}
	if _, err := Assemble("ldrh r0, [r1, r2, lsl #2]\n", 0); err == nil {
		t.Error("shifted halfword offsets must be rejected")
	}
	if _, err := EncodeHS(AL, false, true, false, 0, MemMode{Rn: 1, Off: ImmOp(0), Up: true, PreIndex: true}); err == nil {
		t.Error("signed store must be rejected")
	}
}

func TestDecodeLongMultiply(t *testing.T) {
	cases := []struct {
		src            string
		signed, accum  bool
		lo, hi, rm, rs Reg
	}{
		{"umull r1, r2, r3, r4", false, false, 1, 2, 3, 4},
		{"umlal r1, r2, r3, r4", false, true, 1, 2, 3, 4},
		{"smull r5, r6, r7, r8", true, false, 5, 6, 7, 8},
		{"smlals r5, r6, r7, r8", true, true, 5, 6, 7, 8},
	}
	for _, c := range cases {
		ins := asmOne(t, c.src)
		if ins.Class != ClassMult || !ins.Long {
			t.Fatalf("%s: not a long multiply: %+v", c.src, ins)
		}
		if ins.SignedMul != c.signed || ins.Accum != c.accum ||
			ins.Rn != c.lo || ins.Rd != c.hi || ins.Rm != c.rm || ins.Rs != c.rs {
			t.Errorf("%s: decoded %+v", c.src, ins)
		}
	}
	if !asmOne(t, "smlals r5, r6, r7, r8").SetFlags {
		t.Error("smlals must set flags")
	}
}

func TestLongMultiplyDoesNotAliasMul(t *testing.T) {
	mul := asmOne(t, "mul r1, r2, r3")
	if mul.Long {
		t.Fatal("MUL decoded as long")
	}
	um := asmOne(t, "umull r1, r2, r3, r4")
	if !um.Long {
		t.Fatal("UMULL decoded as short")
	}
}

func TestMulLongExecSemantics(t *testing.T) {
	// Unsigned: 0xffffffff * 0xffffffff = 0xfffffffe_00000001.
	lo, hi, f := MulLongExec(false, false, 0xffffffff, 0xffffffff, 0, 0, Flags{})
	if lo != 0x00000001 || hi != 0xfffffffe {
		t.Fatalf("umull: %#x %#x", hi, lo)
	}
	if !f.N || f.Z {
		t.Fatalf("umull flags: %+v", f)
	}
	// Signed: -1 * -1 = 1.
	lo, hi, f = MulLongExec(true, false, 0xffffffff, 0xffffffff, 0, 0, Flags{})
	if lo != 1 || hi != 0 {
		t.Fatalf("smull: %#x %#x", hi, lo)
	}
	if f.N || f.Z {
		t.Fatalf("smull flags: %+v", f)
	}
	// Accumulate: 2*3 + 0x1_00000005 = 0x1_0000000b.
	lo, hi, _ = MulLongExec(false, true, 2, 3, 5, 1, Flags{})
	if lo != 11 || hi != 1 {
		t.Fatalf("umlal: %#x %#x", hi, lo)
	}
	// Zero result sets Z.
	_, _, f = MulLongExec(true, false, 0, 12345, 0, 0, Flags{})
	if !f.Z || f.N {
		t.Fatalf("zero flags: %+v", f)
	}
}

// Property: MulLongExec agrees with native 64-bit arithmetic.
func TestMulLongExecProperty(t *testing.T) {
	err := quick.Check(func(a, b, accLo, accHi uint32, signed, accum bool) bool {
		lo, hi, _ := MulLongExec(signed, accum, a, b, accLo, accHi, Flags{})
		var want uint64
		if signed {
			want = uint64(int64(int32(a)) * int64(int32(b)))
		} else {
			want = uint64(a) * uint64(b)
		}
		if accum {
			want += uint64(accHi)<<32 | uint64(accLo)
		}
		return lo == uint32(want) && hi == uint32(want>>32)
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExtendedDisassembleRoundTrip(t *testing.T) {
	lines := []string{
		"ldrh r1, [r2, #6]",
		"strh r3, [r4], #-2",
		"ldrsb r5, [r6, r7]!",
		"ldrsh r0, [r1, #-8]",
		"umull r1, r2, r3, r4",
		"umlals r1, r2, r3, r4",
		"smullne r5, r6, r7, r8",
		"smlal r5, r6, r7, r8",
	}
	for _, line := range lines {
		ins := asmOne(t, line)
		dis := Disassemble(ins)
		ins2 := asmOne(t, dis)
		if ins2.Raw != ins.Raw {
			t.Errorf("round trip %q -> %q: %08x != %08x", line, dis, ins.Raw, ins2.Raw)
		}
	}
}
