package faultinj

import (
	"strings"
	"testing"
)

// TestParseErrors is the table of malformed plan strings: every rejection
// must name the offending token so a typo in a long comma-separated plan is
// findable from the error alone.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want []string // substrings the error must contain
	}{
		{"missing action", "journal.append", []string{`"journal.append"`, "want site:action"}},
		{"empty site", ":error", []string{`":error"`, "empty site"}},
		{"empty site with modifiers", "#2:error", []string{"empty site"}},
		{"unknown action", "site:explode", []string{`"site:explode"`, "unknown action", `"explode"`}},
		{"empty action", "site:", []string{"unknown action", `""`}},
		{"non-numeric hit count", "site#two:error", []string{`"site#two:error"`, "bad hit count", `"two"`}},
		{"zero hit count", "site#0:error", []string{"bad hit count", `"0"`}},
		{"negative hit count", "site#-3:error", []string{"bad hit count", `"-3"`}},
		{"non-numeric value", "site@soon:error", []string{`"site@soon:error"`, "bad value", `"soon"`}},
		{"zero value", "site@0:error", []string{"bad value", `"0"`}},
		{"non-numeric times", "site*many:error", []string{`"site*many:error"`, "bad times", `"many"`}},
		{"zero times", "site*0:error", []string{"bad times", `"0"`}},
		{"times below -1", "site*-2:error", []string{"bad times", `"-2"`}},
		{"delay without duration", "site:delay", []string{`"site:delay"`, "delay needs a duration"}},
		{"delay with bad duration", "site:delay=fast", []string{"delay needs a duration"}},
		{"delay with negative duration", "site:delay=-5ms", []string{"delay needs a duration"}},
		{"bad rule among good ones", "a:error,b:nonsense,c:panic", []string{`"b:nonsense"`, "unknown action"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in, err := Parse(tc.spec)
			if err == nil {
				t.Fatalf("Parse(%q) accepted a malformed plan (injector %v)", tc.spec, in)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("Parse(%q) error %q does not name %q", tc.spec, err, want)
				}
			}
		})
	}
}

// TestParseAccepts pins the valid corners of the grammar next to the error
// table: every modifier alone and combined, empty elements skipped, spaces
// trimmed.
func TestParseAccepts(t *testing.T) {
	for _, spec := range []string{
		"",
		" , ,",
		"site:error",
		"site:error=custom message",
		"site:panic",
		"site:panic=msg with = sign",
		"site:delay=5ms",
		"site#3:error",
		"site@50000:error",
		"site*-1:error",
		"site#2@100*4:error",
		" a.b#1:error , c.d*2:delay=1us ",
		"rpc.drop:error",
		"rpc.drop#3:corrupt",
		"rpc.drop:corrupt=flipped byte",
		"rpc.drop*-1:delay=1us",
		"site:corrupt",
	} {
		if _, err := Parse(spec); err != nil {
			t.Errorf("Parse(%q): unexpected error: %v", spec, err)
		}
	}
}
