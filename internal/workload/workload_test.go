package workload

import (
	"testing"

	"rcpn/internal/arm"
	"rcpn/internal/iss"
	"rcpn/internal/machine"
	"rcpn/internal/pipe5"
	"rcpn/internal/ssim"
)

// runISS executes a workload on the golden-model ISS.
func runISS(t *testing.T, w *Workload, scale int) *iss.CPU {
	t.Helper()
	p, err := w.Program(scale)
	if err != nil {
		t.Fatal(err)
	}
	c := iss.New(p, 0)
	c.MaxInstrs = 200_000_000
	if err := c.Run(); err != nil {
		t.Fatalf("%s: iss: %v", w.Name, err)
	}
	return c
}

func TestAllKernelsAssembleAndTerminate(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			c := runISS(t, w, 1)
			if len(c.Output) == 0 {
				t.Fatalf("%s emitted no checksums", w.Name)
			}
			if c.Instret < 50_000 {
				t.Errorf("%s only %d dynamic instructions; too small to be a benchmark", w.Name, c.Instret)
			}
			t.Logf("%s: %d instructions, checksums %#x", w.Name, c.Instret, c.Output)
		})
	}
}

func TestKernelsScale(t *testing.T) {
	// Doubling the scale should (at least) nearly double the work and
	// change or keep checksums deterministically — run twice to confirm
	// determinism.
	w := ByName("crc")
	a := runISS(t, w, 1)
	b := runISS(t, w, 2)
	if b.Instret < a.Instret*3/2 {
		t.Errorf("scale 2 ran %d instructions vs %d at scale 1", b.Instret, a.Instret)
	}
	a2 := runISS(t, w, 1)
	if a2.Output[0] != a.Output[0] {
		t.Errorf("nondeterministic checksum: %#x vs %#x", a2.Output[0], a.Output[0])
	}
}

// TestCrossSimulatorAgreement is the central integration test of the whole
// repository: every kernel must produce identical architected results on
// the ISS golden model, the RCPN StrongARM model, the RCPN XScale model and
// the SimpleScalar-like baseline.
func TestCrossSimulatorAgreement(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			golden := runISS(t, w, 1)

			check := func(name string, output []uint32, text []byte, exit uint32, instret uint64) {
				if exit != golden.Exit {
					t.Errorf("%s: exit %d, iss %d", name, exit, golden.Exit)
				}
				if len(output) != len(golden.Output) {
					t.Fatalf("%s: output %v, iss %v", name, output, golden.Output)
				}
				for i := range output {
					if output[i] != golden.Output[i] {
						t.Errorf("%s: output[%d] = %#x, iss %#x", name, i, output[i], golden.Output[i])
					}
				}
				if string(text) != string(golden.Text) {
					t.Errorf("%s: text mismatch", name)
				}
				if instret != golden.Instret {
					t.Errorf("%s: instret %d, iss %d", name, instret, golden.Instret)
				}
			}

			sa := machine.NewStrongARM(p, machine.Config{})
			if err := sa.Run(0); err != nil {
				t.Fatalf("strongarm: %v", err)
			}
			check("strongarm", sa.Output, sa.Text, sa.ExitCode, sa.Instret)

			xs := machine.NewXScale(p, machine.Config{})
			if err := xs.Run(0); err != nil {
				t.Fatalf("xscale: %v", err)
			}
			check("xscale", xs.Output, xs.Text, xs.ExitCode, xs.Instret)

			hp := pipe5.New(p, pipe5.Config{})
			if err := hp.Run(0); err != nil {
				t.Fatalf("pipe5: %v", err)
			}
			check("pipe5", hp.Output, hp.Text, hp.ExitCode, hp.Instret)

			bs := ssim.New(p, ssim.Config{})
			if err := bs.Run(0); err != nil {
				t.Fatalf("ssim: %v", err)
			}
			check("ssim", bs.Output(), bs.Text(), bs.ExitCode(), bs.Instret)

			fn := machine.NewFunctional(p, machine.Config{})
			if err := fn.RunFunctional(0); err != nil {
				t.Fatalf("functional: %v", err)
			}
			check("functional", fn.Output, fn.Text, fn.ExitCode, fn.Instret)

			// Figure 11 sanity: the CPI-comparable simulators (all modeling
			// a StrongARM-class machine) are in the same regime — the paper
			// reports ~10% difference; we allow a generous envelope, the
			// shape being "close, not equal".
			saCPI, hpCPI, bsCPI := sa.CPI(), hp.CPI(), bs.CPI()
			if saCPI <= 0 || hpCPI <= 0 || bsCPI <= 0 {
				t.Fatalf("missing CPI: sa=%.2f pipe5=%.2f ssim=%.2f", saCPI, hpCPI, bsCPI)
			}
			for name, cpi := range map[string]float64{"pipe5": hpCPI, "ssim": bsCPI} {
				ratio := saCPI / cpi
				if ratio < 0.5 || ratio > 2.0 {
					t.Errorf("CPI divergence: strongarm %.3f vs %s %.3f", saCPI, name, cpi)
				}
			}
			t.Logf("%s: CPI strongarm=%.3f xscale=%.3f pipe5=%.3f ssim=%.3f (%d instrs)",
				w.Name, saCPI, xs.CPI(), hpCPI, bsCPI, golden.Instret)
		})
	}
}

// TestExtraKernels cross-checks the extended-ISA kernels (halfwords, long
// multiplies) across the RCPN models and the baseline.
func TestExtraKernels(t *testing.T) {
	for _, w := range Extra() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p, err := w.Program(1)
			if err != nil {
				t.Fatal(err)
			}
			golden := runISS(t, w, 1)
			if len(golden.Output) == 0 || golden.Instret < 50_000 {
				t.Fatalf("%s too small: %d instrs, output %v", w.Name, golden.Instret, golden.Output)
			}

			sa := machine.NewStrongARM(p, machine.Config{})
			if err := sa.Run(0); err != nil {
				t.Fatalf("strongarm: %v", err)
			}
			xs := machine.NewXScale(p, machine.Config{})
			if err := xs.Run(0); err != nil {
				t.Fatalf("xscale: %v", err)
			}
			bs := ssim.New(p, ssim.Config{})
			if err := bs.Run(0); err != nil {
				t.Fatalf("ssim: %v", err)
			}
			for i := range golden.Output {
				if sa.Output[i] != golden.Output[i] || xs.Output[i] != golden.Output[i] ||
					bs.Output()[i] != golden.Output[i] {
					t.Fatalf("output[%d] mismatch: iss %#x sa %#x xs %#x ssim %#x",
						i, golden.Output[i], sa.Output[i], xs.Output[i], bs.Output()[i])
				}
			}
			if sa.Instret != golden.Instret || xs.Instret != golden.Instret || bs.Instret != golden.Instret {
				t.Fatalf("instret mismatch: iss %d sa %d xs %d ssim %d",
					golden.Instret, sa.Instret, xs.Instret, bs.Instret)
			}
			t.Logf("%s: %d instrs, CPI sa=%.2f xs=%.2f ssim=%.2f",
				w.Name, golden.Instret, sa.CPI(), xs.CPI(), bs.CPI())
		})
	}
}

func TestByName(t *testing.T) {
	if ByName("crc") == nil || ByName("nope") != nil {
		t.Fatal("ByName lookup broken")
	}
	if len(All()) != 6 {
		t.Fatalf("expected the paper's six kernels, got %d", len(All()))
	}
}

func TestSourcesAssembleAtScales(t *testing.T) {
	for _, w := range All() {
		for _, scale := range []int{1, 2, 4} {
			if _, err := arm.Assemble(w.Source(scale), 0x8000); err != nil {
				t.Errorf("%s scale %d: %v", w.Name, scale, err)
			}
		}
	}
}
