package diffrun

import (
	"strings"
	"testing"

	"rcpn/internal/armgen"
	"rcpn/internal/workload"
)

// mutateMLA clears the accumulate bit of every AL-conditioned MLA, turning
// it into a plain MUL — a classic decode defect, deterministic and silent
// until a program actually multiplies-and-accumulates.
func mutateMLA(words []uint32) {
	for j, w := range words {
		if w>>28 == 14 && w&0x0fe000f0 == 0x00200090 {
			words[j] = w &^ (1 << 21)
		}
	}
}

// plantedEngines returns the registry with the named engine executing a
// mutated program image.
func plantedEngines(t *testing.T, name string, mutate func([]uint32)) []Engine {
	t.Helper()
	engines := Engines()
	found := false
	for i, e := range engines {
		if e.Name == name {
			engines[i] = e.WithProgramMutation(mutate)
			found = true
		}
	}
	if !found {
		t.Fatalf("engine %s not in registry", name)
	}
	return engines
}

// TestPlantedBugMinimizedToRegression is the acceptance loop of the fuzzer:
// a deliberately broken engine is caught by the differential runner, the
// failing program is delta-debugged to a tiny kernel (≤25 instructions), the
// kernel is written to a regression directory, and LoadRegressions replays
// it — still witnessing the planted bug — exactly the way the conformance
// matrix auto-discovers committed repros.
func TestPlantedBugMinimizedToRegression(t *testing.T) {
	opt := Options{Engines: plantedEngines(t, "arm9", mutateMLA)}

	// Find a seed whose generated program trips the planted bug. MLA is in
	// the default weight mix, so the first few seeds suffice.
	var cfg armgen.Config
	var prog *armgen.Program
	for seed := uint64(1); seed <= 10; seed++ {
		cfg = armgen.Config{Seed: seed}
		p, err := armgen.Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := Run(p.Image, opt)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Clean() {
			prog = p
			break
		}
	}
	if prog == nil {
		t.Fatal("planted MLA bug not triggered by seeds 1..10")
	}

	m, err := Minimize(prog.Chunks, CheckEngines(opt))
	if err != nil {
		t.Fatalf("minimize: %v", err)
	}
	if n := m.Instructions(); n > 25 {
		t.Errorf("minimized kernel has %d instructions, want <= 25:\n%s", n, m.Source)
	}
	for _, key := range []string{"arm9/plain"} {
		if !strings.Contains(m.Signature, key) {
			t.Errorf("minimized signature lost the planted engine %q:\n%s", key, m.Signature)
		}
	}
	if !strings.Contains(m.Source, "mla") {
		t.Errorf("minimized kernel dropped the MLA the bug needs:\n%s", m.Source)
	}

	// Commit the kernel to a (temp) regression dir and replay it through the
	// same loader the conformance matrix uses.
	dir := t.TempDir()
	if _, err := WriteRegression(dir, "mla-accumulate", cfg, m); err != nil {
		t.Fatalf("write regression: %v", err)
	}
	ws, err := workload.LoadRegressions(dir)
	if err != nil {
		t.Fatalf("load regressions: %v", err)
	}
	if len(ws) != 1 || ws[0].Name != "regress-mla-accumulate" {
		t.Fatalf("unexpected regression workloads: %+v", ws)
	}
	rp, err := ws[0].Program(1)
	if err != nil {
		t.Fatalf("assemble regression: %v", err)
	}
	res, err := Run(rp, opt)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Clean() {
		t.Fatal("replayed regression kernel no longer witnesses the planted bug")
	}
	// And on the honest registry the kernel must be clean — the bug was
	// planted, not real.
	honest, err := Run(rp, Options{})
	if err != nil {
		t.Fatalf("honest replay: %v", err)
	}
	if !honest.Clean() {
		t.Fatalf("regression kernel diverges on the unmutated registry:\n%s", honest.Report())
	}
}
