// Package rpc is the RCPNRPC1 wire protocol between the shard coordinator
// and its workers: length-prefixed binary frames over a byte stream, each
// carrying one versioned message (hello, submit, progress, result, error,
// ping, pong).
//
// Framing is deliberately minimal and self-checking:
//
//	uvarint payload length | payload | u32 LE IEEE CRC-32 of payload
//
// The varint length keeps small control frames small (a ping is 4 bytes of
// payload framed in 6), the trailing CRC detects corruption before any
// payload byte is trusted, and a hard length cap bounds what a damaged or
// hostile peer can make the reader allocate. There is no resynchronization:
// a frame that fails any check poisons the connection, and the caller's
// recovery is the shard layer's — tear the connection down, evict the
// worker, reassign its jobs. Crash-only, like the rest of the stack.
//
// Messages reuse the repository's mask-and-varint house style (RCPNTRC1,
// RCPNCKPT): a one-byte kind, then fields as uvarints/zig-zag varints and
// length-prefixed strings. Every message carries no wall-clock and no
// worker identity beyond the hello, so nothing on the wire can leak
// host-dependent bytes into a result.
package rpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic is the 8-byte stream preamble each side sends once, before its
// hello frame, so a misdirected connection fails fast and loudly.
var Magic = [8]byte{'R', 'C', 'P', 'N', 'R', 'P', 'C', '1'}

// Version is the protocol version carried in the hello exchange.
const Version = 1

// MaxFrame bounds a frame payload. Specs are capped near 1 MiB and result
// payloads are one-job JSON reports plus an optional trace; 16 MiB is
// generous without letting a bad length prefix allocate the host away.
const MaxFrame = 16 << 20

// Framing errors. Receivers treat every one of them as fatal for the
// connection.
var (
	// ErrFrameTooLarge: the length prefix exceeds MaxFrame.
	ErrFrameTooLarge = errors.New("rpc: frame exceeds size limit")
	// ErrFrameCRC: the payload does not match its trailing CRC.
	ErrFrameCRC = errors.New("rpc: frame CRC mismatch")
	// ErrFrameTruncated: the buffer or stream ended inside a frame.
	ErrFrameTruncated = errors.New("rpc: truncated frame")
	// ErrFrameLength: the length prefix is not minimally encoded. The
	// writer only ever emits canonical varints, so a padded one is
	// corruption the CRC cannot catch (the length is outside it).
	ErrFrameLength = errors.New("rpc: non-canonical frame length")
)

// Dispatcher-level sentinels. They live here because both the serve layer
// (which reacts to them) and the shard layer (which returns them) need
// them without importing each other.
var (
	// ErrNoWorkers: the worker ring is empty; the server should execute
	// locally.
	ErrNoWorkers = errors.New("rpc: no live workers")
	// ErrPermanent wraps a worker-reported deterministic failure that
	// produced no payload; retrying on another worker would fail the
	// same way, so the server fails the job instead of re-dispatching.
	ErrPermanent = errors.New("rpc: permanent job failure")
)

// AppendFrame appends one frame carrying payload to dst and returns the
// extended slice.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// DecodeFrame parses one frame from the front of data, returning the
// payload and the total encoded size. The payload aliases data — copy it
// if it must outlive the buffer.
func DecodeFrame(data []byte) (payload []byte, n int, err error) {
	ln, vn := binary.Uvarint(data)
	switch {
	case vn == 0:
		return nil, 0, ErrFrameTruncated
	case vn < 0:
		return nil, 0, ErrFrameTooLarge // uvarint overflow: absurd length
	case vn > 1 && data[vn-1] == 0:
		return nil, 0, ErrFrameLength // padded varint: corruption
	case ln > MaxFrame:
		return nil, 0, ErrFrameTooLarge
	}
	total := vn + int(ln) + 4
	if len(data) < total {
		return nil, 0, ErrFrameTruncated
	}
	payload = data[vn : vn+int(ln)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[vn+int(ln):]) {
		return nil, 0, ErrFrameCRC
	}
	return payload, total, nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	buf := AppendFrame(make([]byte, 0, len(payload)+16), payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame from r. io.EOF is returned clean only at a
// frame boundary; an EOF inside a frame is ErrFrameTruncated.
func ReadFrame(r *bufio.Reader) ([]byte, error) {
	// Read the length varint byte-by-byte so the same canonicality rule
	// as DecodeFrame applies: a padded varint is corruption, not a length.
	var ln uint64
	for i, shift := 0, 0; ; i, shift = i+1, shift+7 {
		b, err := r.ReadByte()
		if err != nil {
			if i == 0 && err == io.EOF {
				return nil, io.EOF // clean EOF only at a frame boundary
			}
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, ErrFrameTruncated
			}
			return nil, err
		}
		if i > 0 && b == 0 {
			return nil, ErrFrameLength
		}
		if shift >= 63 && b > 1 {
			return nil, ErrFrameTooLarge // uvarint overflow
		}
		ln |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
	}
	if ln > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, int(ln)+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrFrameTruncated
		}
		return nil, err
	}
	payload := buf[:ln]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[ln:]) {
		return nil, ErrFrameCRC
	}
	return payload, nil
}

// WriteMagic / ReadMagic implement the one-shot stream preamble.
func WriteMagic(w io.Writer) error {
	_, err := w.Write(Magic[:])
	return err
}

func ReadMagic(r io.Reader) error {
	var got [8]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return fmt.Errorf("rpc: reading stream magic: %w", err)
	}
	if got != Magic {
		return fmt.Errorf("rpc: bad stream magic %q", got[:])
	}
	return nil
}
