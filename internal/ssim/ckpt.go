package ssim

import (
	"fmt"

	"rcpn/internal/ckpt"
)

// Checkpoint support for the SimpleScalar-like baseline. The drained
// condition is stricter than "window empty": sim-outorder keeps absolute
// cycle stamps (functional-unit free times, the post-recovery refetch gate),
// and a boundary is only timing-reproducible once those stamps are in the
// past — otherwise a restored run (whose stamps start at zero, i.e. "free
// now") would issue earlier than the donor would have. Drained therefore
// requires the window, fetch queue and event list empty, no speculation in
// progress, and every unit stamp at or before the current cycle.

// Drained reports whether the simulator sits at a timing-reproducible
// architectural boundary.
func (s *Sim) Drained() bool {
	return len(s.ruu) == 0 && len(s.ifq) == 0 && s.events == nil &&
		!s.spec.active && s.recover == nil &&
		s.refetchAt <= s.Cycles &&
		s.aluFree <= s.Cycles && s.mulFree <= s.Cycles && s.memFree <= s.Cycles
}

// RunN simulates until at least n more instructions commit (or the program
// exits and the window empties), then drains to a checkpointable boundary.
// maxCycles bounds the whole operation (0 = 1<<40).
func (s *Sim) RunN(n uint64, maxCycles int64) error {
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	target := s.Instret + n
	step := func() error {
		if s.Cycles >= maxCycles {
			return fmt.Errorf("ssim: cycle limit %d exceeded at pc=%#08x", maxCycles, s.fetchPC)
		}
		s.cycle()
		return s.Err
	}
	for (!s.Exited || len(s.ruu) > 0) && s.Instret < target {
		if err := step(); err != nil {
			return err
		}
	}
	s.holdFetch = true
	defer func() { s.holdFetch = false }()
	for !s.Drained() {
		if s.Exited && len(s.ruu) == 0 {
			// Program over: the leftover fetch-queue slots and unit stamps
			// will never clear; there is no boundary to reach.
			return nil
		}
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

// Finished reports program completion: the exit system call has committed
// and the window has emptied (the condition Run stops on).
func (s *Sim) Finished() bool { return s.Exited && len(s.ruu) == 0 }

// RunUntil simulates until at least target total instructions have
// committed, the program exits (and the window empties), or Cycles reaches
// cycleLimit (0 = 1<<40). Reaching the cycle limit is a clean stop, not an
// error, and the first state with Instret >= target does not depend on
// where the limit-sized bursts end.
func (s *Sim) RunUntil(target uint64, cycleLimit int64) error {
	if cycleLimit <= 0 {
		cycleLimit = 1 << 40
	}
	for (!s.Exited || len(s.ruu) > 0) && s.Instret < target && s.Cycles < cycleLimit {
		s.cycle()
		if s.Err != nil {
			return s.Err
		}
	}
	return nil
}

// Drain holds fetch and runs to a timing-reproducible checkpointable
// boundary (window and fetch queue empty, unit stamps in the past), the
// same drain RunN performs. maxCycles bounds the drain (0 = 1<<40).
func (s *Sim) Drain(maxCycles int64) error {
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	s.holdFetch = true
	defer func() { s.holdFetch = false }()
	for !s.Drained() {
		if s.Exited && len(s.ruu) == 0 {
			// Program over: the leftover fetch-queue slots and unit stamps
			// will never clear; there is no boundary to reach.
			return nil
		}
		if s.Cycles >= maxCycles {
			return fmt.Errorf("ssim: cycle limit %d exceeded draining at pc=%#08x", maxCycles, s.fetchPC)
		}
		s.cycle()
		if s.Err != nil {
			return s.Err
		}
	}
	return nil
}

// Checkpoint captures the architected state (the oracle core's, which is the
// committed state) plus warm cache, TLB and predictor state. It fails unless
// the simulator is drained.
func (s *Sim) Checkpoint() (*ckpt.Checkpoint, error) {
	if s.Err != nil {
		return nil, s.Err
	}
	if !s.Drained() {
		return nil, fmt.Errorf("ssim: checkpoint requires a drained window (use RunN)")
	}
	if s.Instret != s.oracle.Instret {
		return nil, fmt.Errorf("ssim: committed %d but oracle executed %d — window not architectural",
			s.Instret, s.oracle.Instret)
	}
	ck := s.oracle.Checkpoint()
	ck.ICache = ckpt.CaptureCache(s.ICache)
	ck.DCache = ckpt.CaptureCache(s.DCache)
	ck.ITLB = ckpt.CaptureCache(s.ITLB)
	ck.DTLB = ckpt.CaptureCache(s.DTLB)
	ck.Pred = ckpt.CapturePred(s.Pred)
	return ck, nil
}

// Restore overwrites the simulator's state with the checkpoint (drained
// simulators only; a freshly built one is). All dynamic pipeline state is
// cleared, microarchitectural structures are reset and then warmed from the
// checkpoint when it carries state.
func (s *Sim) Restore(ck *ckpt.Checkpoint) error {
	if !s.Drained() {
		return fmt.Errorf("ssim: restore requires a drained window")
	}
	// The oracle holds the architected state; it has no warm units attached,
	// so this restores exactly registers, flags, memory and output.
	if err := s.oracle.Restore(ck); err != nil {
		return err
	}
	s.fetchPC = ck.PC()
	s.Instret = ck.Instret
	s.Exited = ck.Exited
	s.Err = nil
	s.ifq = s.ifq[:0]
	s.recover = nil
	s.refetchAt = 0
	s.aluFree, s.mulFree, s.memFree = 0, 0, 0
	s.createVec = [16]*ruuEntry{}
	clear(s.spec.mem)
	s.spec.active = false
	if err := ckpt.RestoreCache(s.ICache, ck.ICache); err != nil {
		return err
	}
	if err := ckpt.RestoreCache(s.DCache, ck.DCache); err != nil {
		return err
	}
	if err := ckpt.RestoreCache(s.ITLB, ck.ITLB); err != nil {
		return err
	}
	if err := ckpt.RestoreCache(s.DTLB, ck.DTLB); err != nil {
		return err
	}
	return ckpt.RestorePred(s.Pred, ck.Pred)
}
