// Package workload provides the six benchmark kernels of the paper's
// evaluation — adpcm, blowfish, compress, crc, g721 and go, from MiBench,
// MediaBench and SPEC95 — as self-contained ARM7 assembly programs.
//
// The originals are C programs compiled with arm-linux-gcc; reproducing the
// exact binaries would need that toolchain and the suites' input files, so
// each kernel here reimplements the benchmark's dominant inner loops in ARM
// assembly with deterministic pseudo-random input generated in-place
// (DESIGN.md §2 documents the substitution). What matters for the paper's
// figures is the instruction mix — branchy control (go), bit-serial loops
// (crc), table-driven quantization (adpcm, g721), S-box cipher rounds
// (blowfish) and hash-table probing (compress) — and that every simulator
// executes the exact same ARM7 instruction stream.
//
// Each kernel emits one or more checksums through SWI 1 and exits through
// SWI 0; the test suite cross-checks the checksums across the ISS, both
// RCPN models and the SimpleScalar-like baseline.
package workload

import (
	"fmt"

	"rcpn/internal/arm"
)

// Workload is one benchmark kernel.
type Workload struct {
	// Name matches the paper's benchmark name.
	Name string
	// Suite is the originating benchmark suite in the paper.
	Suite string
	// source returns the assembly text for a given scale factor.
	source func(scale int) string
}

// Source returns the kernel's assembly text at the given scale
// (1 = the default evaluation size; tests use smaller scales).
func (w *Workload) Source(scale int) string {
	if scale < 1 {
		scale = 1
	}
	return w.source(scale)
}

// Program assembles the kernel at the given scale.
func (w *Workload) Program(scale int) (*arm.Program, error) {
	p, err := arm.Assemble(w.Source(scale), 0x8000)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return p, nil
}

// All returns the six kernels in the paper's Figure 10/11 order.
func All() []*Workload {
	return []*Workload{
		{Name: "adpcm", Suite: "MediaBench", source: adpcmSource},
		{Name: "blowfish", Suite: "MiBench", source: blowfishSource},
		{Name: "compress", Suite: "SPEC95", source: compressSource},
		{Name: "crc", Suite: "MiBench", source: crcSource},
		{Name: "g721", Suite: "MediaBench", source: g721Source},
		{Name: "go", Suite: "SPEC95", source: goSource},
	}
}

// ByName returns the named kernel (including the extras) or nil.
func ByName(name string) *Workload {
	for _, w := range AllWithExtra() {
		if w.Name == name {
			return w
		}
	}
	return nil
}
