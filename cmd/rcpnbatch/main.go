// Command rcpnbatch drives concurrent simulation sweeps over the paper's
// evaluation matrix using internal/batch, and demonstrates the
// checkpoint-based sampled-simulation flow built on internal/ckpt.
//
// Two modes:
//
//	rcpnbatch -mode matrix   # Figure-10 cells: every simulator × workload,
//	                         # each cell one job on the worker pool
//	rcpnbatch -mode sample   # SMARTS-style sampling: per cell, K detailed
//	                         # intervals started from ISS checkpoints with
//	                         # functionally warmed caches/predictor, plus the
//	                         # full detailed run as reference; reports the
//	                         # sampled-vs-full CPI error
//
// Both write a machine-readable report (schema rcpn-batch/v1) to -out
// (default BENCH_batch.json). The default report is deterministic — identical
// bytes for -j 1 and -j 8 — because it excludes wall-clock fields; pass -wall
// to embed host timing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rcpn/internal/arm"
	"rcpn/internal/batch"
	"rcpn/internal/bpred"
	"rcpn/internal/ckpt"
	"rcpn/internal/iss"
	"rcpn/internal/machine"
	"rcpn/internal/mem"
	"rcpn/internal/pipe5"
	"rcpn/internal/simrun"
	"rcpn/internal/ssim"
	"rcpn/internal/stats"
	"rcpn/internal/workload"
)

func main() {
	mode := flag.String("mode", "matrix", "matrix (Figure-10 cells) or sample (checkpointed intervals)")
	jobs := flag.Int("j", 0, "worker-pool size (0 = GOMAXPROCS)")
	scale := flag.Int("scale", 2, "workload scale factor")
	simsFlag := flag.String("sims", "", "comma-separated simulator subset (default: all)")
	worksFlag := flag.String("workloads", "", "comma-separated workload subset (default: the paper's six)")
	k := flag.Int("k", 5, "sample mode: measured intervals per cell")
	ilen := flag.Uint64("ilen", 20_000, "sample mode: instructions per measured interval")
	out := flag.String("out", "BENCH_batch.json", "report file (empty = none)")
	wall := flag.Bool("wall", false, "embed wall-clock timing in the report (makes it host-dependent)")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-job deadline (0 = none)")
	quiet := flag.Bool("q", false, "suppress per-job progress lines")
	flag.Parse()

	sims, err := selectSims(*simsFlag)
	if err != nil {
		die(err)
	}
	works, err := selectWorkloads(*worksFlag)
	if err != nil {
		die(err)
	}

	var rep *batch.Report
	opt := batch.Options{Workers: *jobs, Timeout: *timeout}
	if !*quiet {
		opt.Progress = func(done, total int, r batch.Result) {
			status := "ok"
			if r.Err != "" {
				status = "FAILED"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s%s %s (%.2fs)\n", done, total,
				r.Simulator, r.Workload, intervalSuffix(r), status, r.Wall.Seconds())
		}
	}

	switch *mode {
	case "matrix":
		rep = runMatrix(sims, works, *scale, opt)
		fmt.Println(rep.StatsSet().Table(
			"Batch matrix — simulation performance", "million cycles/second", stats.MetricMCPS, 2))
	case "sample":
		rep = runSample(sims, works, *scale, *k, *ilen, opt)
	default:
		die(fmt.Errorf("unknown -mode %q (want matrix or sample)", *mode))
	}

	if failed := rep.Failed(); len(failed) > 0 {
		for _, r := range failed {
			fmt.Fprintf(os.Stderr, "FAILED: %s\n", r.Err)
		}
	}
	fmt.Printf("%d jobs on %d workers in %.2fs\n", len(rep.Results), rep.Workers, rep.Wall.Seconds())

	if *out != "" {
		data, err := rep.JSON(*wall)
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			die(err)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if len(rep.Failed()) > 0 {
		os.Exit(1)
	}
}

func die(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func intervalSuffix(r batch.Result) string {
	if r.Interval == "" {
		return ""
	}
	return "@" + r.Interval
}

// ---- simulator registry ---------------------------------------------------

// simdef describes one measured simulator: how to run it to completion, how
// to build geometry-matched warm units for ISS fast-forwarding, and how to
// run a detailed interval from a checkpoint. Full runs go through
// batch.Drive, so a per-job deadline or a canceled sweep stops the
// simulator at the next chunk boundary instead of leaking the goroutine.
type simdef struct {
	name string
	full func(ctx context.Context, p *arm.Program) (batch.Metrics, error)
	// warm returns I-cache, D-cache and predictor instances matching the
	// simulator's default geometry, for attachment to the functional ISS.
	warm func() (*mem.Cache, *mem.Cache, bpred.Predictor)
	// interval restores ck into a fresh simulator, runs n more instructions
	// to the next drained boundary, and returns the cycles and instructions
	// simulated after the handoff.
	interval func(p *arm.Program, ck *ckpt.Checkpoint, n uint64) (batch.Metrics, error)
}

func allSims() []simdef {
	return []simdef{
		{
			name: "SimpleScalar-Arm",
			full: func(ctx context.Context, p *arm.Program) (batch.Metrics, error) {
				s := ssim.New(p, ssim.Config{})
				err := batch.Drive(ctx, simrun.SSim(s), 0, 0, nil)
				return batch.Metrics{Cycles: s.Cycles, Instret: s.Instret}, err
			},
			warm: func() (*mem.Cache, *mem.Cache, bpred.Predictor) {
				h := mem.DefaultStrongARM()
				return h.I, h.D, bpred.NewNotTaken()
			},
			interval: func(p *arm.Program, ck *ckpt.Checkpoint, n uint64) (batch.Metrics, error) {
				s := ssim.New(p, ssim.Config{})
				if err := s.Restore(ck); err != nil {
					return batch.Metrics{}, err
				}
				base := s.Instret
				err := s.RunN(n, 0)
				return batch.Metrics{Cycles: s.Cycles, Instret: s.Instret - base}, err
			},
		},
		{
			name: "RCPN-XScale",
			full: func(ctx context.Context, p *arm.Program) (batch.Metrics, error) {
				m := machine.NewXScale(p, machine.Config{})
				err := batch.Drive(ctx, simrun.Machine(m), 0, 0, nil)
				return batch.Metrics{Cycles: m.Net.CycleCount(), Instret: m.Instret}, err
			},
			warm: func() (*mem.Cache, *mem.Cache, bpred.Predictor) {
				h := mem.DefaultXScale()
				return h.I, h.D, bpred.NewBimodal(128)
			},
			interval: func(p *arm.Program, ck *ckpt.Checkpoint, n uint64) (batch.Metrics, error) {
				m := machine.NewXScale(p, machine.Config{})
				if err := m.Restore(ck); err != nil {
					return batch.Metrics{}, err
				}
				base := m.Instret
				err := m.RunN(n, 0)
				return batch.Metrics{Cycles: m.Net.CycleCount(), Instret: m.Instret - base}, err
			},
		},
		{
			name: "RCPN-StrongARM",
			full: func(ctx context.Context, p *arm.Program) (batch.Metrics, error) {
				m := machine.NewStrongARM(p, machine.Config{})
				err := batch.Drive(ctx, simrun.Machine(m), 0, 0, nil)
				return batch.Metrics{Cycles: m.Net.CycleCount(), Instret: m.Instret}, err
			},
			warm: func() (*mem.Cache, *mem.Cache, bpred.Predictor) {
				h := mem.DefaultStrongARM()
				return h.I, h.D, bpred.NewNotTaken()
			},
			interval: func(p *arm.Program, ck *ckpt.Checkpoint, n uint64) (batch.Metrics, error) {
				m := machine.NewStrongARM(p, machine.Config{})
				if err := m.Restore(ck); err != nil {
					return batch.Metrics{}, err
				}
				base := m.Instret
				err := m.RunN(n, 0)
				return batch.Metrics{Cycles: m.Net.CycleCount(), Instret: m.Instret - base}, err
			},
		},
		{
			name: "hand-written-5stage",
			full: func(ctx context.Context, p *arm.Program) (batch.Metrics, error) {
				s := pipe5.New(p, pipe5.Config{})
				err := batch.Drive(ctx, simrun.Pipe5(s), 0, 0, nil)
				return batch.Metrics{Cycles: s.Cycles, Instret: s.Instret}, err
			},
			warm: func() (*mem.Cache, *mem.Cache, bpred.Predictor) {
				h := mem.DefaultStrongARM()
				return h.I, h.D, bpred.NewNotTaken()
			},
			interval: func(p *arm.Program, ck *ckpt.Checkpoint, n uint64) (batch.Metrics, error) {
				s := pipe5.New(p, pipe5.Config{})
				if err := s.Restore(ck); err != nil {
					return batch.Metrics{}, err
				}
				base := s.Instret
				err := s.RunN(n, 0)
				return batch.Metrics{Cycles: s.Cycles, Instret: s.Instret - base}, err
			},
		},
	}
}

func selectSims(csv string) ([]simdef, error) {
	all := allSims()
	if csv == "" {
		return all, nil
	}
	var out []simdef
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, s := range all {
			if s.name == name {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown simulator %q", name)
		}
	}
	return out, nil
}

func selectWorkloads(csv string) ([]*workload.Workload, error) {
	if csv == "" {
		return workload.All(), nil
	}
	var out []*workload.Workload
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		w := workload.ByName(name)
		if w == nil {
			return nil, fmt.Errorf("unknown workload %q", name)
		}
		out = append(out, w)
	}
	return out, nil
}

// ---- matrix mode ----------------------------------------------------------

func runMatrix(sims []simdef, works []*workload.Workload, scale int, opt batch.Options) *batch.Report {
	var jobs []batch.Job
	for _, w := range works {
		p, err := w.Program(scale)
		if err != nil {
			die(err)
		}
		for _, s := range sims {
			s, w := s, w
			jobs = append(jobs, batch.Job{
				Simulator: s.name, Workload: w.Name,
				Run: func(ctx context.Context) (batch.Metrics, error) { return s.full(ctx, p) },
			})
		}
	}
	return batch.Run(jobs, opt)
}

// ---- sample mode ----------------------------------------------------------

// runSample builds, per (simulator, workload) cell, one full-run reference
// job plus k interval jobs. Each interval job fast-forwards the functional
// ISS (with the simulator's cache/predictor geometry attached for functional
// warming) to the interval start, snapshots through the binary codec, hands
// off to a fresh detailed simulator and measures ilen instructions. The
// sampled CPI estimate is the pooled cycles/instructions over the k
// intervals; its error against the full run is attached to the reference
// job's extra metrics and printed.
func runSample(sims []simdef, works []*workload.Workload, scale int, k int, ilen uint64, opt batch.Options) *batch.Report {
	if k < 1 {
		die(fmt.Errorf("-k must be >= 1"))
	}
	type cell struct {
		sim  simdef
		w    *workload.Workload
		p    *arm.Program
		full int   // index of the reference job
		ivs  []int // indices of the interval jobs
	}
	var cells []*cell
	var jobsList []batch.Job

	for _, w := range works {
		p, err := w.Program(scale)
		if err != nil {
			die(err)
		}
		// One functional pass gives the instruction count that places the
		// intervals; it is the same fast-forward engine the jobs use.
		golden := iss.New(p, 0)
		golden.MaxInstrs = 2_000_000_000
		if err := golden.Run(); err != nil {
			die(fmt.Errorf("%s: iss: %w", w.Name, err))
		}
		total := golden.Instret

		for _, s := range sims {
			s, w, p := s, w, p
			c := &cell{sim: s, w: w, p: p}
			c.full = len(jobsList)
			jobsList = append(jobsList, batch.Job{
				Simulator: s.name, Workload: w.Name, Interval: "full",
				Run: func(ctx context.Context) (batch.Metrics, error) { return s.full(ctx, p) },
			})
			for i := 0; i < k; i++ {
				start := total * uint64(i) / uint64(k)
				label := fmt.Sprintf("k%d", i)
				c.ivs = append(c.ivs, len(jobsList))
				jobsList = append(jobsList, batch.Job{
					Simulator: s.name, Workload: w.Name, Interval: label,
					Run: func(ctx context.Context) (batch.Metrics, error) {
						return sampleInterval(s, p, start, ilen)
					},
				})
			}
			cells = append(cells, c)
		}
	}

	rep := batch.Run(jobsList, opt)

	fmt.Println("Sampled vs full CPI (per cell: pooled over", k, "intervals of", ilen, "instructions)")
	fmt.Printf("%-22s%-12s%10s%10s%9s\n", "simulator", "workload", "full", "sampled", "err")
	for _, c := range cells {
		full := rep.Results[c.full]
		if full.Err != "" {
			continue
		}
		var cyc int64
		var ins uint64
		ok := true
		for _, i := range c.ivs {
			r := rep.Results[i]
			if r.Err != "" {
				ok = false
				break
			}
			cyc += r.Cycles
			ins += r.Instret
		}
		if !ok || ins == 0 {
			continue
		}
		sampled := float64(cyc) / float64(ins)
		errPct := 100 * (sampled - full.CPI()) / full.CPI()
		if rep.Results[c.full].Extra == nil {
			rep.Results[c.full].Extra = map[string]float64{}
		}
		rep.Results[c.full].Extra["sampled_cpi"] = sampled
		rep.Results[c.full].Extra["cpi_err_pct"] = errPct
		fmt.Printf("%-22s%-12s%10.3f%10.3f%8.2f%%\n",
			c.sim.name, c.w.Name, full.CPI(), sampled, errPct)
	}
	fmt.Println()
	return rep
}

// sampleInterval is the body of one interval job: functional fast-forward
// with warming, checkpoint through the binary codec (exercising the
// serialization path end to end), detailed handoff, measure. Intervals are
// short (tens of thousands of instructions), so they run without
// cancellation checks; the per-job deadline still bounds them through the
// pool's grace fallback.
func sampleInterval(s simdef, p *arm.Program, start, ilen uint64) (batch.Metrics, error) {
	c := iss.New(p, 0)
	c.WarmI, c.WarmD, c.WarmPred = s.warm()
	if _, err := c.RunN(start); err != nil {
		return batch.Metrics{}, fmt.Errorf("fast-forward: %w", err)
	}
	data, err := c.Checkpoint().Bytes()
	if err != nil {
		return batch.Metrics{}, fmt.Errorf("encode: %w", err)
	}
	ck, err := ckpt.FromBytes(data)
	if err != nil {
		return batch.Metrics{}, fmt.Errorf("decode: %w", err)
	}
	return s.interval(p, ck, ilen)
}
